"""Categorical classifier tests: the §3.3 feature options and ID3."""

import pytest

from repro.errors import TrainingError
from repro.extraction import (
    CategoricalClassifier,
    FeatureOptions,
    SentenceFeatureExtractor,
    attribute,
)
from repro.linkgrammar.constituents import Role


class TestFeatureOptions:
    def test_defaults_match_paper_smoking_setup(self):
        opts = FeatureOptions.smoking()
        assert opts.pos_classes == frozenset(
            {"verb", "noun", "adjective", "adverb"}
        )
        assert opts.constituents is None
        assert not opts.head_only
        assert opts.use_lemma

    def test_unknown_pos_class_rejected(self):
        with pytest.raises(ValueError):
            FeatureOptions(pos_classes=frozenset({"preposition"}))


class TestSentenceFeatures:
    def test_lemma_collapses_deny_forms(self):
        # §3.3: "denies," "denied" and "deny" become the same feature.
        ex = SentenceFeatureExtractor(FeatureOptions(use_lemma=True))
        f1 = ex.extract("She denies pain.")
        f2 = ex.extract("She denied pain.")
        assert "deny" in f1 and "deny" in f2

    def test_lemma_disabled_keeps_surface(self):
        ex = SentenceFeatureExtractor(FeatureOptions(use_lemma=False))
        assert "denies" in ex.extract("She denies pain.")

    def test_pos_class_filter(self):
        ex = SentenceFeatureExtractor(
            FeatureOptions(pos_classes=frozenset({"verb"}))
        )
        features = ex.extract("She quit smoking five years ago.")
        assert "quit" in features
        assert "year" not in features and "years" not in features

    def test_function_words_never_features(self):
        ex = SentenceFeatureExtractor()
        features = ex.extract("She has never smoked.")
        assert "she" not in features  # pronoun, not in the 4 classes

    def test_constituent_filter_object_only(self):
        ex = SentenceFeatureExtractor(
            FeatureOptions(constituents=frozenset({Role.OBJECT}))
        )
        features = ex.extract("She denies alcohol use.")
        assert "alcohol" in features or "use" in features
        assert "deny" not in features

    def test_constituent_filter_passes_all_on_parse_failure(self):
        ex = SentenceFeatureExtractor(
            FeatureOptions(constituents=frozenset({Role.OBJECT}))
        )
        # Unparseable colon fragment: every word is kept.
        features = ex.extract("Smoking: none zzgarble")
        assert features  # not empty

    def test_head_only_filter(self):
        ex = SentenceFeatureExtractor(
            FeatureOptions(head_only=True)
        )
        features = ex.extract("She has a dominant breast mass.")
        assert "mass" in features
        assert "dominant" not in features

    def test_numeric_boolean_features(self):
        ex = SentenceFeatureExtractor(
            FeatureOptions(numeric_thresholds=(2.0,))
        )
        low = ex.extract("She drinks 2 beers per week.")
        high = ex.extract("She drinks 6 beers per week.")
        assert "NUM<=2" in low and "NUM>2" not in low
        assert "NUM>2" in high and "NUM<=2" not in high

    def test_numeric_features_absent_without_numbers(self):
        ex = SentenceFeatureExtractor(
            FeatureOptions(numeric_thresholds=(2.0,))
        )
        features = ex.extract("Denies alcohol use.")
        assert not any(f.startswith("NUM") for f in features)


class TestClassifier:
    TEXTS = [
        "She has never smoked.",
        "Denies tobacco use.",
        "She quit smoking five years ago.",
        "Former smoker, quit 3 years ago.",
        "She is currently a smoker.",
        "She smokes one pack per day.",
    ]
    LABELS = ["never", "never", "former", "former", "current", "current"]

    def test_fit_predict(self):
        clf = CategoricalClassifier(attribute("smoking"))
        clf.fit(self.TEXTS, self.LABELS)
        assert clf.predict("She has never smoked.") == "never"
        assert clf.predict("She quit smoking ten years ago.") == "former"

    def test_predict_before_fit_raises(self):
        clf = CategoricalClassifier(attribute("smoking"))
        with pytest.raises(TrainingError):
            clf.predict("anything")

    def test_mismatched_lengths_rejected(self):
        clf = CategoricalClassifier(attribute("smoking"))
        with pytest.raises(ValueError):
            clf.dataset(["a"], ["x", "y"])

    def test_features_used_reported(self):
        clf = CategoricalClassifier(attribute("smoking"))
        clf.fit(self.TEXTS, self.LABELS)
        assert 1 <= len(clf.features_used()) <= 10

    def test_describe_is_readable(self):
        clf = CategoricalClassifier(attribute("smoking"))
        clf.fit(self.TEXTS, self.LABELS)
        assert "->" in clf.describe()

    def test_predict_record(self):
        from repro.records import PatientRecord, Section

        clf = CategoricalClassifier(attribute("smoking"))
        clf.fit(self.TEXTS, self.LABELS)
        record = PatientRecord(
            patient_id="1",
            sections=[
                Section("Social History", "She is currently a smoker.")
            ],
        )
        assert clf.predict_record(record) == "current"

    def test_predict_record_without_section(self):
        from repro.records import PatientRecord, Section

        clf = CategoricalClassifier(attribute("smoking"))
        clf.fit(self.TEXTS, self.LABELS)
        record = PatientRecord(
            patient_id="1", sections=[Section("Heart", "Regular.")]
        )
        assert clf.predict_record(record) is None
