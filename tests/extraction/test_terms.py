"""Term extractor tests: POS patterns, ontology lookup, assignment."""

import pytest

from repro.extraction import TermExtractor
from repro.extraction.schema import attribute
from repro.ontology import default_ontology
from repro.records import PatientRecord, Section


@pytest.fixture(scope="module")
def extractor():
    return TermExtractor()


class TestPaperExamples:
    def test_psh_example_three_terms(self, extractor):
        # §3.2: the system extracts postoperative CVA,
        # cholecystectomy, and midline hernia [closure].
        hits = extractor.extract_terms(
            "Significant for a postoperative CVA after undergoing a "
            "cholecystectomy and a midline hernia closure"
        )
        surfaces = [h.surface.lower() for h in hits]
        assert "postoperative cva" in surfaces
        assert "cholecystectomy" in surfaces
        assert any("hernia" in s for s in surfaces)

    def test_appendix_pmh_terms(self, extractor):
        hits = extractor.extract_terms(
            "Significant for diabetes, heart disease, high blood "
            "pressure, hypercholesterolemia, bronchitis, arrhythmia, "
            "and depression."
        )
        names = {h.concept_name for h in hits}
        assert names >= {
            "diabetes", "heart disease", "high blood pressure",
            "hypercholesterolemia", "bronchitis", "arrhythmia",
            "depression",
        }

    def test_inflected_surface_normalizes(self, extractor):
        hits = extractor.extract_terms("history of midline hernias")
        assert any(h.concept_name == "hernia" for h in hits)


class TestPatternBehaviour:
    def test_longest_pattern_tried_first(self, extractor):
        # "high blood pressure" must come out as one 3-word term, not
        # "blood pressure".
        hits = extractor.extract_terms("history of high blood pressure")
        assert any(
            h.surface.lower() == "high blood pressure" for h in hits
        )

    def test_scan_continues_after_endpoint(self, extractor):
        hits = extractor.extract_terms(
            "diabetes and heart disease and asthma"
        )
        assert [h.concept_name for h in hits] == [
            "diabetes", "heart disease", "asthma",
        ]

    def test_non_terms_ignored(self, extractor):
        hits = extractor.extract_terms(
            "She was seen in the office this morning."
        )
        assert hits == []

    def test_semantic_type_filter(self, extractor):
        from repro.ontology import SemanticType

        hits = extractor.extract_terms(
            "cholecystectomy and diabetes",
            semantic_types={SemanticType.PROCEDURE},
        )
        assert [h.concept_name for h in hits] == ["cholecystectomy"]


class TestPredefinedAssignment:
    def _record(self, pmh="", psh=""):
        sections = []
        if pmh:
            sections.append(Section("Past Medical History", pmh))
        if psh:
            sections.append(Section("Past Surgical History", psh))
        return PatientRecord(patient_id="1", sections=sections)

    def test_predefined_name_goes_to_predefined(self, extractor):
        out = extractor.extract_record(
            self._record(pmh="Significant for diabetes.")
        )
        assert out["predefined_past_medical_history"] == ["diabetes"]
        assert out["other_past_medical_history"] == []

    def test_other_disease_goes_to_other(self, extractor):
        out = extractor.extract_record(
            self._record(pmh="Significant for gout.")
        )
        assert out["predefined_past_medical_history"] == []
        assert out["other_past_medical_history"] == ["gout"]

    def test_synonym_of_predefined_misrouted_without_synonyms(self):
        # The paper's v1 failure: "gallbladder removal" is a synonym of
        # the predefined "cholecystectomy" but lands in "other".
        extractor = TermExtractor(use_synonyms=False)
        out = extractor.extract_record(
            self._record(psh="Status post gallbladder removal.")
        )
        assert out["predefined_past_surgical_history"] == []
        assert out["other_past_surgical_history"] == ["cholecystectomy"]

    def test_synonym_of_predefined_fixed_with_synonyms(self):
        extractor = TermExtractor(use_synonyms=True)
        out = extractor.extract_record(
            self._record(psh="Status post gallbladder removal.")
        )
        assert out["predefined_past_surgical_history"] == [
            "cholecystectomy"
        ]
        assert out["other_past_surgical_history"] == []

    def test_duplicates_collapse(self, extractor):
        out = extractor.extract_record(
            self._record(pmh="Diabetes and diabetes.")
        )
        assert out["predefined_past_medical_history"] == ["diabetes"]


class TestSharedSectionFilters:
    """Attributes sharing a section must not share a type filter."""

    def _attrs(self):
        from repro.extraction.schema import TermsAttribute
        from repro.ontology import SemanticType

        return (
            TermsAttribute(
                name="diseases",
                section="History",
                semantic_types=(SemanticType.DISEASE,),
            ),
            TermsAttribute(
                name="procedures",
                section="History",
                semantic_types=(SemanticType.PROCEDURE,),
            ),
        )

    def _record(self):
        return PatientRecord(
            patient_id="1",
            sections=[
                Section("History", "cholecystectomy and diabetes")
            ],
        )

    def test_each_attribute_keeps_its_own_filter(self):
        # Pre-fix, section hits were cached by section name alone, so
        # the first attribute's DISEASE filter leaked into the
        # PROCEDURE attribute sharing the section.
        extractor = TermExtractor(attributes=self._attrs())
        out = extractor.extract_record(self._record())
        assert out["diseases"] == ["diabetes"]
        assert out["procedures"] == ["cholecystectomy"]

    def test_filter_independent_of_attribute_order(self):
        extractor = TermExtractor(
            attributes=tuple(reversed(self._attrs()))
        )
        out = extractor.extract_record(self._record())
        assert out["diseases"] == ["diabetes"]
        assert out["procedures"] == ["cholecystectomy"]

    def test_matching_filters_still_share_extraction(self):
        # Same section AND same semantic types: one extraction pass,
        # identical hits for both attributes.
        first, _ = self._attrs()
        from dataclasses import replace

        twin = replace(first, name="diseases_too")
        extractor = TermExtractor(attributes=(first, twin))
        out = extractor.extract_record(self._record())
        assert out["diseases"] == out["diseases_too"] == ["diabetes"]


class TestDegradedOntology:
    def test_partial_match_on_missing_compound(self):
        # Drop everything except the generic head; "ovarian cancer"
        # then partial-matches to "cancer" — the paper's FP mechanism.
        onto = default_ontology().subset(0.0, keep={"cancer"})
        extractor = TermExtractor(ontology=onto)
        hits = extractor.extract_terms("history of ovarian cancer")
        assert [h.concept_name for h in hits] == ["cancer"]

    def test_complete_miss_when_nothing_matches(self):
        onto = default_ontology().subset(0.0, keep={"gout"})
        extractor = TermExtractor(ontology=onto)
        assert extractor.extract_terms("history of ovarian cancer") == []
