"""Error-attribution tests: the §5 analysis, automated."""

import pytest

from repro.eval import analyze_term_errors, paper_ontology
from repro.eval.error_analysis import ErrorBreakdown, _is_partial_of
from repro.extraction import TermExtractor
from repro.synth import CohortSpec, RecordGenerator


@pytest.fixture(scope="module")
def analysis():
    generator = RecordGenerator(seed=42)
    records, golds = generator.generate_cohort(
        CohortSpec(
            size=25,
            smoking_counts={
                "never": 14, "current": 6, "former": 3, None: 2,
            },
        )
    )
    # use_synonyms=False: this fixture reproduces the paper's v1
    # error analysis, whose conclusions are about the surface-name
    # assignment bug the production default now fixes.
    extractor = TermExtractor(
        ontology=paper_ontology(), use_synonyms=False
    )
    return analyze_term_errors(records, golds, extractor)


class TestPaperConclusions:
    def test_predefined_surgical_misses_are_misroutes(self, analysis):
        # §5: "the low recall of predefined past surgical history …
        # is due to failures to recognize the synonyms of predefined
        # surgical terms and improper assignments of them to other
        # surgical terms."
        breakdown = analysis["predefined_past_surgical_history"]
        misrouted = breakdown.false_negatives.get("misrouted", 0)
        # Misrouting is a leading cause (ties with "other" possible on
        # small cohorts: synonyms the POS patterns cannot even propose,
        # like "tubes tied", count there).
        assert misrouted >= 0.4 * breakdown.total_fn()

    def test_other_surgical_fps_are_misroutes(self, analysis):
        breakdown = analysis["other_past_surgical_history"]
        assert breakdown.dominant_fp_cause() == "misrouted"

    def test_other_medical_misses_are_ontology_gaps(self, analysis):
        # §5: "false positives are mainly caused by the incompleteness
        # of domain ontology" — the same gaps drive the misses.
        breakdown = analysis["other_past_medical_history"]
        assert "ontology_miss" in breakdown.false_negatives

    def test_render_readable(self, analysis):
        text = analysis["other_past_surgical_history"].render()
        assert "false positives" in text
        assert "misrouted" in text


class TestHelpers:
    def test_partial_of_detects_subset(self):
        assert _is_partial_of("cancer", ["ovarian cancer"])
        assert _is_partial_of("blood pressure", ["high blood pressure"])

    def test_partial_of_rejects_equal_or_disjoint(self):
        assert not _is_partial_of("gout", ["gout"])
        assert not _is_partial_of("gout", ["migraine"])

    def test_empty_breakdown(self):
        breakdown = ErrorBreakdown(attribute="x")
        assert breakdown.total_fp() == 0
        assert breakdown.dominant_fp_cause() is None

    def test_synonym_fix_removes_misroutes(self):
        generator = RecordGenerator(seed=42)
        records, golds = generator.generate_cohort(
            CohortSpec(
                size=15,
                smoking_counts={
                    "never": 9, "current": 3, "former": 2, None: 1,
                },
            )
        )
        fixed = TermExtractor(
            ontology=paper_ontology(), use_synonyms=True
        )
        analysis = analyze_term_errors(records, golds, fixed)
        breakdown = analysis["predefined_past_surgical_history"]
        assert breakdown.false_negatives.get("misrouted", 0) == 0
