"""Bootstrap interval tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.stats import (
    Interval,
    accuracy_interval,
    bootstrap,
    precision_interval,
    recall_interval,
)
from repro.ml.metrics import ExtractionCounts


class TestInterval:
    def test_contains(self):
        interval = Interval(point=0.9, low=0.8, high=0.95)
        assert interval.contains(0.85)
        assert not interval.contains(0.7)

    def test_width(self):
        assert Interval(0.9, 0.8, 1.0).width() == pytest.approx(0.2)

    def test_inconsistent_rejected(self):
        with pytest.raises(ValueError):
            Interval(point=0.5, low=0.6, high=0.9)

    def test_str_formats_percentages(self):
        assert "[" in str(Interval(0.9, 0.8, 1.0))


class TestBootstrap:
    def test_point_estimate_matches_statistic(self):
        interval = bootstrap([1.0, 2.0, 3.0],
                             lambda v: sum(v) / len(v), seed=1)
        assert interval.point == pytest.approx(2.0)

    def test_deterministic_per_seed(self):
        samples = [0.8, 0.9, 1.0, 0.7, 0.95]
        a = accuracy_interval(samples, seed=3)
        b = accuracy_interval(samples, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_degenerate_sample_zero_width(self):
        interval = accuracy_interval([0.9] * 10, seed=1)
        assert interval.width() == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap([], lambda v: 0.0)

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap([1.0], lambda v: 1.0, confidence=1.5)

    @given(
        st.lists(st.floats(0.0, 1.0), min_size=3, max_size=25)
    )
    @settings(max_examples=20, deadline=None)
    def test_interval_brackets_point(self, samples):
        interval = accuracy_interval(
            samples, iterations=200, seed=5
        )
        assert interval.low <= interval.point <= interval.high

    def test_more_data_narrower_interval(self):
        small = accuracy_interval(
            [0.6, 1.0, 0.8], iterations=1000, seed=2
        )
        big = accuracy_interval(
            [0.6, 1.0, 0.8] * 20, iterations=1000, seed=2
        )
        assert big.width() < small.width()


class TestExtractionIntervals:
    COUNTS = [
        ExtractionCounts(3, 4, 4),
        ExtractionCounts(2, 2, 3),
        ExtractionCounts(4, 5, 4),
        ExtractionCounts(1, 1, 2),
    ]

    def test_precision_interval(self):
        interval = precision_interval(self.COUNTS, seed=1)
        assert 0.0 <= interval.low <= interval.high <= 1.0

    def test_recall_interval(self):
        interval = recall_interval(self.COUNTS, seed=1)
        assert interval.contains(interval.point)

    def test_perfect_extraction_tight_at_one(self):
        perfect = [ExtractionCounts(3, 3, 3)] * 10
        interval = precision_interval(perfect, seed=1)
        assert interval.point == 1.0
        assert interval.low == 1.0
