"""Reproduction report tests (on a small cohort for speed)."""

import pytest

from repro.eval.report import ReproductionReport, full_report
from repro.synth import CohortSpec, RecordGenerator


@pytest.fixture(scope="module")
def report():
    generator = RecordGenerator(seed=9)
    records, golds = generator.generate_cohort(
        CohortSpec(
            size=12,
            smoking_counts={
                "never": 6, "current": 3, "former": 2, None: 1,
            },
        )
    )
    return full_report(records, golds)


class TestReport:
    def test_numeric_rows_present(self, report):
        assert len(report.numeric_rows) == 8

    def test_numeric_perfect_on_consistent_style(self, report):
        assert report.numeric_perfect()

    def test_table1_rows_present(self, report):
        assert len(report.table1) == 4

    def test_render_mentions_all_sections(self, report):
        text = report.render()
        assert "[NUM]" in text
        assert "[TAB1]" in text
        assert "[SMOKE]" in text
        assert "92.2%" in text  # the paper's reference number

    def test_render_flags_exact_numeric(self, report):
        assert "-> exact" in report.render()

    def test_feature_range_sane(self, report):
        low, high = report.smoking_feature_range
        assert 0 < low <= high

    def test_provenance_breakdown_rendered(self, report):
        assert report.numeric_methods  # (method, extracted, wrong)
        for _, extracted, wrong in report.numeric_methods:
            assert 0 <= wrong <= extracted
        text = report.render()
        assert "[PROV] association method breakdown" in text
        for method, _, wrong in report.numeric_methods:
            assert method in text
            if wrong == 0:
                assert "clean" in text


class TestReportDataclass:
    def test_diverged_flagging(self):
        report = ReproductionReport(
            numeric_rows=[("pulse", 0.9, 1.0)],
            table1={k: (0.5, 0.5) for k in (
                "predefined_past_medical_history",
                "other_past_medical_history",
                "predefined_past_surgical_history",
                "other_past_surgical_history",
            )},
            smoking_accuracy=0.9,
            smoking_feature_range=(4, 7),
        )
        assert not report.numeric_perfect()
        assert "DIVERGED" in report.render()
