"""Style-matrix harness tests: schema, stamping, and the CI gate.

The expensive full-matrix run lives in ``benchmarks/`` (STYLES); here
we pin the result schema on a small cohort, the manifest stamping, and
— on the paper spec — that the consistent-style row still equals the
pinned pre-pack baseline, which is the exact predicate CI gates on.
"""

import pytest

from repro.eval import (
    CONSISTENT_BASELINE,
    consistent_matches_baseline,
    render_style_table,
    run_style_matrix,
)
from repro.synth import CohortSpec, STYLE_PACKS, pack_by_name

SMALL_SPEC = CohortSpec(
    size=4, smoking_counts={"never": 2, "current": 2}
)


@pytest.fixture(scope="module")
def small_results():
    packs = (pack_by_name("consistent"), pack_by_name("terse"),
             pack_by_name("cardiology-vitals"))
    return run_style_matrix(
        seed=7, spec=SMALL_SPEC, packs=packs, smoking=False
    )


class TestResultSchema:
    def test_manifest_stamping(self, small_results):
        assert small_results["experiment"] == "STYLES"
        assert small_results["bench_file"] == "bench_style_matrix.py"
        assert small_results["seed"] == 7
        assert small_results["cohort_size"] == 4

    def test_per_pack_entries(self, small_results):
        for entry in small_results["packs"].values():
            assert set(entry) >= {
                "description", "gold_violations", "numeric", "terms",
            }
            for values in entry["numeric"].values():
                assert set(values) == {"precision", "recall"}

    def test_pack_attributes_add_numeric_rows(self, small_results):
        cardio = small_results["packs"]["cardiology-vitals"]
        assert "ejection_fraction" in cardio["numeric"]
        assert "ejection_fraction" not in (
            small_results["packs"]["consistent"]["numeric"]
        )

    def test_no_gold_violations_anywhere(self, small_results):
        for name, entry in small_results["packs"].items():
            assert entry["gold_violations"] == 0, name

    def test_baseline_embedded_for_the_artifact(self, small_results):
        assert small_results["baseline"] == CONSISTENT_BASELINE

    def test_json_serializable(self, small_results):
        import json

        json.dumps(small_results)


class TestBaselineGate:
    def test_smoking_required_for_match(self, small_results):
        # smoking=False runs can never claim the baseline holds
        assert small_results["baseline_match"] is False
        assert consistent_matches_baseline(small_results) is False

    def test_missing_consistent_pack_is_no_match(self):
        assert consistent_matches_baseline({"packs": {}}) is False

    def test_consistent_row_matches_pinned_baseline_on_paper_spec(
        self,
    ):
        # THE gate: identical predicate to CI's style-matrix job,
        # restricted to the consistent pack to stay test-suite-fast
        results = run_style_matrix(
            seed=42, packs=(pack_by_name("consistent"),)
        )
        assert results["baseline_match"] is True

    def test_baseline_covers_all_core_attributes(self):
        from repro.extraction.schema import NUMERIC_ATTRIBUTES

        assert set(CONSISTENT_BASELINE["numeric"]) == {
            a.name for a in NUMERIC_ATTRIBUTES
        }
        assert len(CONSISTENT_BASELINE["terms"]) == 4
        assert 0 < CONSISTENT_BASELINE["smoking_accuracy"] <= 1


class TestRenderTable:
    def test_table_lists_every_pack(self, small_results):
        table = render_style_table(small_results)
        for pack in small_results["packs"]:
            assert pack in table
        assert "baseline_match" in table

    def test_table_handles_missing_smoking(self, small_results):
        assert "—" in render_style_table(small_results)


class TestRegistryCoverage:
    def test_default_run_covers_every_registered_pack(self):
        # guard against a pack being registered but silently skipped;
        # use a tiny spec so the full-registry run stays cheap
        results = run_style_matrix(
            seed=3,
            spec=CohortSpec(size=2, smoking_counts={"never": 2}),
            smoking=False,
        )
        assert set(results["packs"]) == {
            p.name for p in STYLE_PACKS
        }
