"""Experiment harness tests (small cohorts to keep runtime sane)."""

import pytest

from repro.eval import (
    TABLE1_PAPER,
    categorical_experiment,
    numeric_experiment,
    paper_cohort,
    paper_ontology,
    smoking_experiment,
    table1_experiment,
)
from repro.synth import CohortSpec, RecordGenerator


@pytest.fixture(scope="module")
def small_cohort():
    generator = RecordGenerator(seed=3)
    spec = CohortSpec(
        size=12,
        smoking_counts={"never": 6, "current": 3, "former": 2, None: 1},
    )
    return generator.generate_cohort(spec)


class TestNumericExperiment:
    def test_small_cohort_is_perfect(self, small_cohort):
        records, golds = small_cohort
        result = numeric_experiment(records, golds)
        p, r = result.overall()
        assert p == 1.0 and r == 1.0

    def test_rows_cover_all_attributes(self, small_cohort):
        records, golds = small_cohort
        result = numeric_experiment(records, golds)
        assert len(result.rows()) == 8

    def test_methods_recorded(self, small_cohort):
        records, golds = small_cohort
        result = numeric_experiment(records, golds)
        assert sum(result.methods.values()) > 0


class TestTable1Experiment:
    def test_returns_all_four_rows(self, small_cohort):
        records, golds = small_cohort
        table = table1_experiment(records, golds)
        assert set(table) == set(TABLE1_PAPER)

    def test_metrics_are_probabilities(self, small_cohort):
        records, golds = small_cohort
        for p, r in table1_experiment(records, golds).values():
            assert 0.0 <= p <= 1.0
            assert 0.0 <= r <= 1.0

    def test_synonym_fix_improves_predefined_surgical_recall(
        self, small_cohort
    ):
        records, golds = small_cohort
        broken = table1_experiment(records, golds, use_synonyms=False)
        fixed = table1_experiment(records, golds, use_synonyms=True)
        attr = "predefined_past_surgical_history"
        assert fixed[attr][1] >= broken[attr][1]


class TestCategoricalExperiment:
    def test_smoking_protocol_counts(self, small_cohort):
        records, golds = small_cohort
        result = smoking_experiment(records, golds, seed=1)
        # 11 labelled cases, 5 folds, 10 repetitions.
        assert result.confusion.total() == 11 * 10
        assert 0.0 <= result.accuracy <= 1.0

    def test_excludes_missing_labels(self, small_cohort):
        records, golds = small_cohort
        result = categorical_experiment(
            "smoking", records, golds, repetitions=1, seed=0
        )
        assert result.confusion.total() == 11


class TestPaperFixtures:
    def test_paper_ontology_keeps_predefined(self):
        onto = paper_ontology(coverage=0.5)
        assert onto.lookup("diabetes")
        assert onto.lookup("cholecystectomy")

    def test_paper_cohort_shape(self):
        records, golds = paper_cohort(seed=1)
        assert len(records) == 50
        labels = [g.categorical["smoking"] for g in golds]
        assert labels.count(None) == 5
