"""Style-recovery floors and the ratchet gate, plus parity re-checks.

Three layers:

1. ``check_floors`` unit behaviour — violations are detected, missing
   packs/attributes are themselves violations, passing results are
   clean;
2. the repository ratchet — the checked-in ``EVAL_styles.json``
   (regenerated at seed 42 whenever extraction changes) must satisfy
   every floor in the checked-in ``eval_floors.json``, and the floors
   file must keep flooring the ISSUE-recovered gaps at their
   recovered levels;
3. parity on the recovery paths — the fused scanner and the term
   automaton were both touched by surfaces the fixes introduced
   (chart-speak numerics, multi-word surgical phrases), so their
   bit-for-bit contracts are re-asserted on exactly those texts.
"""

import json
from pathlib import Path

import pytest

from repro.eval import check_floors, load_floors

REPO = Path(__file__).resolve().parents[2]

PASSING = {
    "packs": {
        "verbose": {
            "numeric": {
                "pulse": {"precision": 1.0, "recall": 1.0},
            },
        },
    },
}

FLOORS = {
    "packs": {
        "verbose": {
            "numeric": {"pulse": {"recall": 0.9}},
        },
    },
}


class TestCheckFloors:
    def test_passing_results_clean(self):
        assert check_floors(PASSING, FLOORS) == []

    def test_below_floor_is_violation(self):
        failing = {
            "packs": {
                "verbose": {
                    "numeric": {
                        "pulse": {"precision": 1.0, "recall": 0.5},
                    },
                },
            },
        }
        violations = check_floors(failing, FLOORS)
        assert len(violations) == 1
        assert "pulse" in violations[0]
        assert "0.5" in violations[0]

    def test_missing_pack_is_violation(self):
        assert check_floors({"packs": {}}, FLOORS)

    def test_missing_attribute_is_violation(self):
        results = {"packs": {"verbose": {"numeric": {}}}}
        violations = check_floors(results, FLOORS)
        assert violations and "missing" in violations[0]

    def test_smoking_floor_checked(self):
        floors = {"packs": {"consistent": {"smoking_accuracy": 0.9}}}
        ok = {"packs": {"consistent": {"smoking_accuracy": 0.95}}}
        bad = {"packs": {"consistent": {"smoking_accuracy": 0.5}}}
        assert check_floors(ok, floors) == []
        assert check_floors(bad, floors)


class TestRepositoryRatchet:
    """The checked-in artifact satisfies the checked-in floors."""

    @pytest.fixture(scope="class")
    def artifact(self):
        return json.loads((REPO / "EVAL_styles.json").read_text())

    @pytest.fixture(scope="class")
    def floors(self):
        return load_floors(REPO / "eval_floors.json")

    def test_artifact_meets_every_floor(self, artifact, floors):
        assert check_floors(artifact, floors) == []

    def test_artifact_is_baseline_matched_seed_42(self, artifact):
        assert artifact["seed"] == 42
        assert artifact["baseline_match"] is True

    def test_artifact_has_no_gold_violations(self, artifact):
        for name, entry in artifact["packs"].items():
            assert entry["gold_violations"] == 0, name

    def test_floors_pin_recovered_gaps(self, floors):
        # the ISSUE-named recoveries may never be un-floored: verbose
        # pulse, abbreviation-dense age/gravida/para + smoking,
        # cardiology SpO2/EF/LDL, baseline predefined surgical recall
        packs = floors["packs"]
        assert packs["verbose"]["numeric"]["pulse"]["recall"] >= 0.9
        for name in ("age", "gravida", "para"):
            floor = packs["abbreviation-dense"]["numeric"][name]
            assert floor["recall"] >= 0.85, name
        assert packs["abbreviation-dense"]["smoking_accuracy"] >= 0.93
        cardio = packs["cardiology-vitals"]["numeric"]
        assert cardio["oxygen_saturation"]["recall"] >= 0.8
        assert cardio["ejection_fraction"]["recall"] >= 0.85
        assert cardio["ldl_cholesterol"]["recall"] >= 0.85
        baseline_terms = packs["consistent"]["terms"]
        predefined = baseline_terms["predefined_past_surgical_history"]
        assert predefined["recall"] >= 0.9
        assert packs["medication-dosage"]["numeric"]

    def test_every_floored_pack_is_registered(self, floors):
        from repro.synth.packs import STYLE_PACKS

        registered = {p.name for p in STYLE_PACKS}
        assert set(floors["packs"]) <= registered


RECOVERY_TEXTS = [
    "Pt is a 33 y/o female, G4P3A1.",
    "Wt 154 lbs. Denies tob. use, 20 pk-yr history quit 10 yrs ago.",
    "SpO2 94%. Ejection fraction is 57.5 percent.",
    "LDL cholesterol down from 201 to 180 mg/dL.",
    "Respiratory rate, oxygen saturation, and ejection fraction are "
    "12, 95, and 45.",
    "Metoprolol was increased from 25 to 50 mg. Lisinopril 2.5 mg.",
    "Status post removal of the gallbladder and biopsy of the "
    "breast; breast conservation surgery 1998.",
]


class TestParityOnRecoveryPaths:
    def test_fused_scanner_parity_on_recovery_texts(self):
        from repro.nlp.pipeline import default_pipeline

        def dump(document):
            return [
                (a.type, a.id, a.start, a.end, dict(a.features))
                for a in sorted(
                    document.annotations.all(),
                    key=lambda a: (a.type, a.id),
                )
            ]

        for text in RECOVERY_TEXTS:
            fused = default_pipeline(fused=True).process_text(text)
            staged = default_pipeline(fused=False).process_text(text)
            assert dump(fused) == dump(staged), text

    def test_automaton_parity_on_recovery_texts(self):
        from repro.extraction.terms import TermExtractor

        fast = TermExtractor()
        legacy = TermExtractor(legacy_scan=True, use_automaton=False)
        assert fast.automaton is not None
        for text in RECOVERY_TEXTS:
            assert fast.extract_terms(text) == legacy.extract_terms(
                text
            ), text

    def test_automaton_parity_with_v1_assignment(self):
        # the extended POS patterns must scan identically under both
        # assignment modes (use_synonyms only changes routing)
        from repro.extraction.terms import TermExtractor

        fast = TermExtractor(use_synonyms=False)
        legacy = TermExtractor(
            use_synonyms=False, legacy_scan=True, use_automaton=False
        )
        for text in RECOVERY_TEXTS:
            assert fast.extract_terms(text) == legacy.extract_terms(
                text
            ), text


class TestLiveRecoveryFloors:
    """Small-cohort live floors for the two headline recoveries."""

    def test_verbose_pulse_and_weight_recovered(self):
        from repro.eval import numeric_experiment
        from repro.synth import CohortSpec, pack_by_name

        pack = pack_by_name("verbose")
        records, golds = pack.generate_cohort(
            CohortSpec(size=10, smoking_counts={"never": 10}), seed=11
        )
        result = numeric_experiment(records, golds)
        for name in ("pulse", "weight"):
            counts = result.per_attribute[name]
            assert counts.recall() >= 0.9, name

    def test_abbreviation_dense_numerics_recovered(self):
        from repro.eval import numeric_experiment
        from repro.synth import CohortSpec, pack_by_name

        pack = pack_by_name("abbreviation-dense")
        records, golds = pack.generate_cohort(
            CohortSpec(size=10, smoking_counts={"never": 10}), seed=11
        )
        result = numeric_experiment(records, golds)
        for name in ("age", "gravida", "para", "weight"):
            counts = result.per_attribute[name]
            assert counts.recall() >= 0.85, name

    def test_medication_dosage_pack_extracts(self):
        from repro.eval import numeric_experiment
        from repro.synth import CohortSpec, pack_by_name

        pack = pack_by_name("medication-dosage")
        records, golds = pack.generate_cohort(
            CohortSpec(size=8, smoking_counts={"never": 8}), seed=11
        )
        result = numeric_experiment(
            records, golds, attributes=pack.all_attributes()
        )
        for attr in pack.attributes:
            counts = result.per_attribute[attr.name]
            assert counts.recall() >= 0.8, attr.name
            assert counts.precision() >= 0.9, attr.name
