"""Manifest ↔ benchmarks directory consistency."""

from pathlib import Path

import pytest

from repro.eval.manifest import EXPERIMENTS, bench_files, by_id

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


class TestManifest:
    def test_every_registered_bench_exists(self):
        for experiment in EXPERIMENTS:
            assert (BENCH_DIR / experiment.bench_file).exists(), \
                experiment.id

    def test_every_bench_file_registered(self):
        on_disk = {
            p.name for p in BENCH_DIR.glob("bench_*.py")
        }
        assert on_disk == bench_files()

    def test_ids_unique(self):
        ids = [e.id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_by_id(self):
        assert by_id("TAB1").bench_file == "bench_table1_terms.py"
        with pytest.raises(KeyError):
            by_id("NOPE")

    def test_table1_paper_values_match_experiments_module(self):
        from repro.eval.experiments import TABLE1_PAPER

        assert by_id("TAB1").paper_values == TABLE1_PAPER

    def test_kinds_are_known(self):
        kinds = {e.kind for e in EXPERIMENTS}
        assert kinds <= {
            "reproduction", "ablation", "extension", "baseline",
            "infrastructure",
        }

    def test_core_reproductions_present(self):
        reproductions = {
            e.id for e in EXPERIMENTS if e.kind == "reproduction"
        }
        assert {"FIG1", "NUM", "TAB1", "SMOKE"} <= reproductions
