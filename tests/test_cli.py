"""CLI tests: each subcommand exercised through main()."""

import json

import pytest

from repro.cli import main
from repro.storage import ResultStore


class TestGenerate:
    def test_generate_writes_files_and_gold(self, tmp_path, capsys):
        code = main([
            "generate", "--count", "8", "--seed", "1",
            "--output", str(tmp_path),
        ])
        assert code == 0
        assert len(list(tmp_path.glob("patient_*.txt"))) == 8
        gold = json.loads((tmp_path / "gold.json").read_text())
        assert len(gold) == 8
        assert "numeric" in gold[0]

    def test_generate_paper_spec_at_fifty(self, tmp_path):
        main([
            "generate", "--count", "50", "--seed", "1",
            "--output", str(tmp_path),
        ])
        gold = json.loads((tmp_path / "gold.json").read_text())
        smoking = [g["categorical"]["smoking"] for g in gold]
        assert smoking.count(None) == 5

    def test_varied_style(self, tmp_path):
        code = main([
            "generate", "--count", "6", "--style", "varied",
            "--level", "1.0", "--output", str(tmp_path),
        ])
        assert code == 0


class TestExtract:
    @pytest.fixture
    def notes(self, tmp_path):
        out = tmp_path / "notes"
        main(["generate", "--count", "8", "--seed", "2",
              "--output", str(out)])
        return out

    def test_extract_with_gold(self, notes, tmp_path):
        db = tmp_path / "study.db"
        code = main([
            "extract", "--input", str(notes),
            "--gold", str(notes / "gold.json"), "--db", str(db),
        ])
        assert code == 0
        store = ResultStore(db)
        assert len(store.patients()) == 8
        assert store.categorical_value(store.patients()[0], "smoking") \
            is not None or True  # smoking may be missing for a record

    def test_extract_trace_and_replay(self, notes, tmp_path, capsys):
        db = tmp_path / "study.db"
        trace = tmp_path / "trace.jsonl"
        code = main([
            "extract", "--input", str(notes),
            "--gold", str(notes / "gold.json"), "--db", str(db),
            "--trace", str(trace),
        ])
        assert code == 0
        lines = [
            json.loads(line)
            for line in trace.read_text().splitlines()
        ]
        assert lines[0]["type"] == "manifest"
        assert sum(1 for l in lines if l["type"] == "span") == 8
        assert ResultStore(db).missing_provenance() == []
        capsys.readouterr()

        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "manifest:" in out
        assert "8 record span trees" in out

        record = lines[1]["name"]
        assert main(["trace", str(trace), "--record", record]) == 0
        out = capsys.readouterr().out
        assert f"record '{record}'" in out

    def test_trace_unknown_record_is_nonzero(self, notes, tmp_path):
        db = tmp_path / "study.db"
        trace = tmp_path / "trace.jsonl"
        main([
            "extract", "--input", str(notes), "--db", str(db),
            "--trace", str(trace),
        ])
        assert main(
            ["trace", str(trace), "--record", "no-such-id"]
        ) != 0

    def test_model_save_and_reuse(self, notes, tmp_path):
        models = tmp_path / "models"
        db1 = tmp_path / "a.db"
        db2 = tmp_path / "b.db"
        code = main([
            "extract", "--input", str(notes),
            "--gold", str(notes / "gold.json"),
            "--db", str(db1), "--models", str(models),
        ])
        assert code == 0
        assert len(list(models.glob("*.json"))) == 12
        # Second run: no gold, models loaded from disk.
        code = main([
            "extract", "--input", str(notes),
            "--models", str(models), "--db", str(db2),
        ])
        assert code == 0
        a = ResultStore(db1)
        b = ResultStore(db2)
        for pid in a.patients():
            assert a.categorical_value(pid, "smoking") == \
                b.categorical_value(pid, "smoking")

    def test_csv_export_flag(self, notes, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main([
            "extract", "--input", str(notes),
            "--gold", str(notes / "gold.json"),
            "--db", str(tmp_path / "c.db"), "--csv", str(csv_path),
        ])
        assert code == 0
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "patient_id" in header and "smoking" in header

    def test_extract_parallel_with_stats(self, notes, tmp_path, capsys):
        db = tmp_path / "parallel.db"
        code = main([
            "extract", "--input", str(notes), "--db", str(db),
            "--workers", "2", "--stats",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert len(ResultStore(db).patients()) == 8
        assert "records/s" in out
        assert "parse cache" in out
        assert "prune ratio" in out

    def test_parallel_matches_serial_extract(self, notes, tmp_path):
        serial_db = tmp_path / "serial.db"
        parallel_db = tmp_path / "parallel.db"
        main(["extract", "--input", str(notes), "--db", str(serial_db)])
        main(["extract", "--input", str(notes), "--db", str(parallel_db),
              "--workers", "2", "--chunk-size", "2"])
        a, b = ResultStore(serial_db), ResultStore(parallel_db)
        assert a.patients() == b.patients()
        for pid in a.patients():
            assert a.numeric_value(pid, "pulse") == \
                b.numeric_value(pid, "pulse")

    def test_extract_without_gold_skips_categorical(
        self, notes, tmp_path
    ):
        db = tmp_path / "study.db"
        code = main([
            "extract", "--input", str(notes), "--db", str(db),
        ])
        assert code == 0
        store = ResultStore(db)
        pid = store.patients()[0]
        assert store.categorical_value(pid, "smoking") is None
        assert store.numeric_value(pid, "pulse") is not None


class TestParse:
    def test_parse_prints_diagram(self, capsys):
        code = main(["parse", "She has never smoked."])
        captured = capsys.readouterr().out
        assert code == 0
        assert "LEFT-WALL" in captured
        assert "PP" in captured

    def test_parse_failure_is_nonzero(self, capsys):
        code = main(["parse", "Blood pressure: 144/90"])
        assert code == 1
        assert "no linkage" in capsys.readouterr().out

    def test_parse_all_linkages(self, capsys):
        code = main(["parse", "--all", "She quit smoking."])
        assert code == 0
        assert "linkage 1/" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_prints_tokens_and_numbers(self, capsys):
        code = main(["analyze", "Pulse of 84."])
        out = capsys.readouterr().out
        assert code == 0
        assert "Pulse" in out and "84" in out
        assert "number:" in out


class TestResilienceCLI:
    @pytest.fixture
    def notes(self, tmp_path):
        out = tmp_path / "notes"
        main(["generate", "--count", "8", "--seed", "3",
              "--output", str(out)])
        return out

    def test_injected_poison_quarantined(self, notes, tmp_path,
                                         capsys):
        db = tmp_path / "faulted.db"
        code = main([
            "extract", "--input", str(notes), "--db", str(db),
            "--inject-faults", "raise@2", "--run-id", "r1",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "quarantined record" in err
        store = ResultStore(db)
        assert len(store.patients()) == 7
        rows = store.quarantined(run_id="r1")
        assert [r["error_type"] for r in rows] == ["InjectedFailure"]

    def test_interrupt_then_resume_bit_identical(self, notes,
                                                 tmp_path, capsys):
        plain = tmp_path / "plain.db"
        assert main([
            "extract", "--input", str(notes), "--db", str(plain),
        ]) == 0

        db = tmp_path / "resumed.db"
        code = main([
            "extract", "--input", str(notes), "--db", str(db),
            "--inject-faults", "interrupt@5", "--run-id", "r2",
        ])
        assert code == 130
        assert "--resume r2" in capsys.readouterr().err
        assert not db.exists()  # only the journal survived

        assert main([
            "extract", "--input", str(notes), "--db", str(db),
            "--resume", "r2",
        ]) == 0
        assert db.read_bytes() == plain.read_bytes()

    def test_worker_kill_survived(self, notes, tmp_path):
        db = tmp_path / "killed.db"
        code = main([
            "extract", "--input", str(notes), "--db", str(db),
            "--inject-faults", "kill@3", "--workers", "2",
        ])
        assert code == 0
        store = ResultStore(db)
        assert len(store.patients()) == 8
        assert store.quarantined() == []

    def test_bad_fault_spec_is_exit_2(self, notes, tmp_path, capsys):
        code = main([
            "extract", "--input", str(notes),
            "--db", str(tmp_path / "x.db"),
            "--inject-faults", "explode@nowhere",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_hostile_corpus_through_cli(self, hostile_corpus,
                                        tmp_path):
        from repro.records import save_records

        notes = tmp_path / "hostile"
        save_records(hostile_corpus, notes)
        db = tmp_path / "hostile.db"
        code = main([
            "extract", "--input", str(notes), "--db", str(db),
        ])
        assert code == 0
        assert len(ResultStore(db).patients()) == len(hostile_corpus)
