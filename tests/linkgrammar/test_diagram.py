"""ASCII arc diagram tests."""

import pytest

from repro.linkgrammar import LinkGrammarParser, render


@pytest.fixture(scope="module")
def linkage():
    return LinkGrammarParser().parse_one(
        "she is currently a smoker .".split()
    )


class TestRender:
    def test_words_on_last_line(self, linkage):
        last = render(linkage).splitlines()[-1]
        for word in ["LEFT-WALL", "she", "is", "currently", "a",
                     "smoker"]:
            assert word in last

    def test_labels_present(self, linkage):
        output = render(linkage)
        for label in ["Wd", "Ss", "EB", "D", "O"]:
            assert label in output

    def test_without_wall(self, linkage):
        output = render(linkage, include_wall=False)
        assert "LEFT-WALL" not in output
        assert "Wd" not in output
        assert "Ss" in output

    def test_pretty_method_delegates(self, linkage):
        assert linkage.pretty() == render(linkage)

    def test_arcs_have_corners_and_verticals(self, linkage):
        output = render(linkage)
        assert "+" in output and "|" in output and "-" in output

    def test_word_columns_align_with_verticals(self, linkage):
        # Every '|' must sit within the width of the word line.
        lines = render(linkage).splitlines()
        width = len(lines[-1])
        for line in lines[:-1]:
            assert len(line) <= width + 1

    def test_single_word_sentence(self):
        linkage = LinkGrammarParser().parse_one(["none"])
        output = render(linkage)
        assert "none" in output and "Wd" in output

    def test_nested_arcs_stack(self):
        # "she has never smoked": PP spans over E, so PP sits higher.
        linkage = LinkGrammarParser().parse_one(
            "she has never smoked .".split()
        )
        lines = render(linkage).splitlines()
        pp_row = next(i for i, l in enumerate(lines) if "PP" in l)
        e_row = next(i for i, l in enumerate(lines) if "E" in l and
                     "LEFT" not in l)
        assert pp_row < e_row  # earlier line = drawn higher
