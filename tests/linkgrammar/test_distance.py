"""Linkage graph distances — the paper's association machinery."""

import math

import pytest

from repro.linkgrammar import (
    ASSOCIATION_WEIGHTS,
    LinkGrammarParser,
    LinkWeights,
    linkage_distances,
    nearest_word,
    word_distance,
)

FIGURE1 = (
    "blood pressure is 144/90 , pulse of 84 , temperature of 98.3 , "
    "and weight of 154 pounds ."
).split()


@pytest.fixture(scope="module")
def figure1_linkage():
    return LinkGrammarParser().parse_one(FIGURE1)


def position(linkage, word, nth=0):
    hits = [i for i, w in enumerate(linkage.words) if w == word]
    return hits[nth]


class TestWordDistance:
    def test_zero_for_same_word(self, figure1_linkage):
        assert word_distance(figure1_linkage, 3, 3) == 0.0

    def test_adjacent_link_distance_one(self, figure1_linkage):
        is_pos = position(figure1_linkage, "is")
        bp_pos = position(figure1_linkage, "144/90")
        assert word_distance(figure1_linkage, is_pos, bp_pos) == 1.0

    def test_symmetry(self, figure1_linkage):
        a = position(figure1_linkage, "pressure")
        b = position(figure1_linkage, "84")
        assert word_distance(figure1_linkage, a, b) == word_distance(
            figure1_linkage, b, a
        )

    def test_triangle_inequality_on_samples(self, figure1_linkage):
        n = len(figure1_linkage.words)
        for a in range(1, n, 3):
            for b in range(1, n, 4):
                for c in range(1, n, 5):
                    dab = word_distance(figure1_linkage, a, b)
                    dbc = word_distance(figure1_linkage, b, c)
                    dac = word_distance(figure1_linkage, a, c)
                    assert dac <= dab + dbc + 1e-9


class TestAssociationOnFigure1:
    """Each feature keyword must be nearest to its own number."""

    @pytest.mark.parametrize(
        "feature,number",
        [
            ("pressure", "144/90"),
            ("pulse", "84"),
            ("temperature", "98.3"),
            ("weight", "154"),
        ],
    )
    def test_feature_nearest_number(self, figure1_linkage, feature, number):
        lk = figure1_linkage
        numbers = [
            i
            for i, w in enumerate(lk.words)
            if w in {"144/90", "84", "98.3", "154"}
        ]
        feature_pos = position(lk, feature)
        best, _ = nearest_word(
            lk, feature_pos, numbers, weights=ASSOCIATION_WEIGHTS
        )
        assert lk.words[best] == number


class TestDistances:
    def test_all_distances_finite(self, figure1_linkage):
        distances = linkage_distances(figure1_linkage, 1)
        assert all(d != math.inf for d in distances.values())

    def test_weights_change_distances(self, figure1_linkage):
        lk = figure1_linkage
        is_pos = position(lk, "is")
        bp_pos = position(lk, "144/90")
        cheap_o = LinkWeights(overrides={"O": 0.25})
        assert word_distance(lk, is_pos, bp_pos, cheap_o) == 0.25

    def test_weight_prefix_longest_match(self):
        weights = LinkWeights(overrides={"M": 5.0, "MV": 0.5})
        assert weights.weight("MVp") == 0.5
        assert weights.weight("Mp") == 5.0
        assert weights.weight("O") == 1.0

    def test_nearest_word_empty_candidates(self, figure1_linkage):
        best, dist = nearest_word(figure1_linkage, 1, [])
        assert best is None and dist == math.inf

    def test_nearest_word_tie_breaks_left(self, figure1_linkage):
        lk = figure1_linkage
        # Distance from a word to itself-adjacent candidates: feed two
        # candidates with equal distance and check leftmost wins.
        is_pos = position(lk, "is")
        d = linkage_distances(lk, is_pos)
        equal = [
            i for i in range(1, len(lk.words)) if d[i] == 2.0
        ]
        if len(equal) >= 2:
            best, _ = nearest_word(lk, is_pos, equal)
            assert best == min(equal)
