"""Parser tests: clinical sentences, invariants, failure modes."""

import pytest

from repro.errors import ParseFailure
from repro.linkgrammar import (
    Dictionary,
    LinkGrammarParser,
    Linkage,
)

FIGURE1 = (
    "blood pressure is 144/90 , pulse of 84 , temperature of 98.3 , "
    "and weight of 154 pounds ."
).split()


@pytest.fixture(scope="module")
def parser():
    return LinkGrammarParser()


def link_set(linkage: Linkage):
    return {
        (linkage.words[l.left], linkage.words[l.right], l.label)
        for l in linkage.links
    }


class TestClinicalSentences:
    def test_figure1_parses(self, parser):
        linkage = parser.parse_one(FIGURE1)
        links = link_set(linkage)
        # The paper's headline link: verb–object between "is" and the
        # blood pressure reading.
        assert ("is", "144/90", "O") in links
        assert ("blood", "pressure", "AN") in links

    def test_quit_smoking(self, parser):
        linkage = parser.parse_one("she quit smoking five years ago .".split())
        links = link_set(linkage)
        assert ("she", "quit", "Ss") in links
        assert ("years", "ago", "TA") in links

    def test_never_smoked(self, parser):
        linkage = parser.parse_one("she has never smoked .".split())
        links = link_set(linkage)
        assert ("has", "smoked", "PP") in links
        assert ("never", "smoked", "E") in links

    def test_current_smoker(self, parser):
        linkage = parser.parse_one("she is currently a smoker .".split())
        links = link_set(linkage)
        assert ("is", "smoker", "O") in links
        assert ("is", "currently", "EB") in links

    def test_single_word(self, parser):
        linkage = parser.parse_one(["none"])
        assert len(linkage.links) == 1

    def test_predicate_adjective_with_complement(self, parser):
        linkage = parser.parse_one(
            "her breast history is negative for biopsies .".split()
        )
        links = link_set(linkage)
        assert ("is", "negative", "Pa") in links
        assert ("for", "biopsies", "J") in links

    def test_gyn_fragment(self, parser):
        linkage = parser.parse_one(
            "menarche at age 10 , gravida 4 , para 3 .".split()
        )
        links = link_set(linkage)
        assert ("age", "10", "NM") in links
        assert ("gravida", "4", "NM") in links
        assert ("para", "3", "NM") in links

    def test_tag_fallback_for_unknown_words(self, parser):
        # "flurbs" is not in the dictionary; the NNS tag default makes
        # the sentence parse anyway.
        words = "she reports two flurbs .".split()
        tags = ["PRP", "VBZ", "CD", "NNS", "."]
        linkage = parser.parse_one(words, tags)
        assert ("reports", "flurbs", "O") in link_set(linkage)


class TestFailureModes:
    def test_colon_fragment_fails_without_tags(self, parser):
        # §3.1: "the Link Grammar Parser cannot parse text fragments,
        # e.g., 'blood pressure: 144/90'" — the pattern approach takes
        # over.  Without a tag for ':' there is no dictionary entry.
        with pytest.raises(ParseFailure):
            parser.parse("blood pressure : 144/90".split(" ")[0:2] + ["###"])

    def test_empty_sentence(self, parser):
        with pytest.raises(ParseFailure):
            parser.parse([])

    def test_punctuation_only(self, parser):
        with pytest.raises(ParseFailure):
            parser.parse([".", ","])

    def test_unknown_word_no_tag(self, parser):
        with pytest.raises(ParseFailure):
            parser.parse(["zzzqqq", "xxxyyy"])

    def test_word_cap(self):
        small = LinkGrammarParser(max_words=5)
        with pytest.raises(ParseFailure):
            small.parse("she is a very very very old lady .".split())

    def test_ungrammatical_fails(self, parser):
        with pytest.raises(ParseFailure):
            parser.parse("the the the".split())


class TestLinkageInvariants:
    SENTENCES = [
        FIGURE1,
        "she quit smoking five years ago .".split(),
        "she has never smoked .".split(),
        "she is currently a smoker .".split(),
        "her breast history is negative for biopsies .".split(),
        "she drinks one glass of wine per day .".split(),
        "menarche at age 10 , gravida 4 , para 3 .".split(),
        "smoking history , 15 years .".split(),
    ]

    @pytest.mark.parametrize("words", SENTENCES, ids=lambda w: " ".join(w[:4]))
    def test_all_linkages_planar(self, parser, words):
        for linkage in parser.parse(words):
            assert linkage.is_planar()

    @pytest.mark.parametrize("words", SENTENCES, ids=lambda w: " ".join(w[:4]))
    def test_all_linkages_connected(self, parser, words):
        for linkage in parser.parse(words):
            assert linkage.is_connected()

    @pytest.mark.parametrize("words", SENTENCES, ids=lambda w: " ".join(w[:4]))
    def test_exclusion_no_duplicate_pairs(self, parser, words):
        for linkage in parser.parse(words):
            pairs = [(l.left, l.right) for l in linkage.links]
            assert len(pairs) == len(set(pairs))

    @pytest.mark.parametrize("words", SENTENCES, ids=lambda w: " ".join(w[:4]))
    def test_linkages_unique(self, parser, words):
        seen = set()
        for linkage in parser.parse(words):
            key = frozenset(linkage.links)
            assert key not in seen
            seen.add(key)

    def test_costs_sorted_ascending(self, parser):
        linkages = parser.parse(FIGURE1)
        costs = [lk.cost for lk in linkages]
        assert costs == sorted(costs)

    def test_token_map_skips_stripped_punctuation(self, parser):
        linkage = parser.parse_one("she has never smoked .".split())
        # wall maps to None, remaining words map to original indices.
        assert linkage.token_map[0] is None
        assert linkage.token_map[1:] == [0, 1, 2, 3]


class TestCustomDictionary:
    def test_add_overrides(self):
        d = Dictionary()
        d.add("zzgloblet", "{D-} & (Wd- or O-)")
        parser = LinkGrammarParser(dictionary=d)
        linkage = parser.parse_one(["the", "zzgloblet"])
        assert ("the", "zzgloblet") in {
            (linkage.words[l.left], linkage.words[l.right])
            for l in linkage.links
        }

    def test_contains(self):
        d = Dictionary()
        assert "pressure" in d
        assert "zzgloblet" not in d

    def test_parse_one_returns_cheapest(self):
        parser = LinkGrammarParser()
        all_linkages = parser.parse(FIGURE1)
        assert parser.parse_one(FIGURE1).cost == all_linkages[0].cost


class TestBitsetParity:
    """The packed-bitset match path is an optimization, not a
    behaviour: every sentence must produce identical linkages (and
    identical failures) with it on or off."""

    SENTENCES = TestLinkageInvariants.SENTENCES

    @pytest.mark.parametrize(
        "words", SENTENCES, ids=lambda w: " ".join(w[:4])
    )
    def test_linkages_identical(self, words):
        fast = LinkGrammarParser(bitset=True)
        slow = LinkGrammarParser(bitset=False)
        assert fast.parse(words) == slow.parse(words)
        assert fast.stats.match_bitset_hits > 0
        assert slow.stats.match_bitset_hits == 0

    def test_failures_identical(self):
        bad = "wine glass pressure the of .".split()
        fast = LinkGrammarParser(bitset=True)
        slow = LinkGrammarParser(bitset=False)
        with pytest.raises(ParseFailure) as fast_err:
            fast.parse(bad)
        with pytest.raises(ParseFailure) as slow_err:
            slow.parse(bad)
        assert fast_err.value.reason == slow_err.value.reason

    def test_prune_counts_identical(self):
        fast = LinkGrammarParser(bitset=True)
        slow = LinkGrammarParser(bitset=False)
        fast.parse(FIGURE1)
        slow.parse(FIGURE1)
        assert (
            fast.stats.disjuncts_after == slow.stats.disjuncts_after
        )
        assert (
            fast.stats.disjuncts_before
            == slow.stats.disjuncts_before
        )


class TestBeamPruning:
    def test_off_by_default(self):
        parser = LinkGrammarParser()
        parser.parse(FIGURE1)
        assert parser.beam is None
        assert parser.stats.beam_pruned == 0

    def test_wide_beam_changes_nothing(self):
        # A beam wider than any cost spread admits every disjunct,
        # so the linkages must match the unpruned parser exactly.
        wide = LinkGrammarParser(beam=1000)
        plain = LinkGrammarParser()
        assert wide.parse(FIGURE1) == plain.parse(FIGURE1)

    def test_tight_beam_prunes_and_still_parses(self):
        tight = LinkGrammarParser(beam=0)
        words = "she quit smoking five years ago .".split()
        linkage = tight.parse_one(words)
        assert linkage is not None
        assert tight.stats.beam_pruned > 0

    def test_tight_beam_can_lose_linkages(self):
        # beam=0 keeps only cheapest-cost disjuncts per word; on a
        # long coordinated sentence that deletes the only complete
        # linkage — which is exactly why beam pruning is opt-in and
        # part of the cache key rather than a transparent fast path.
        tight = LinkGrammarParser(beam=0)
        with pytest.raises(ParseFailure):
            tight.parse(FIGURE1)
        assert tight.stats.beam_pruned > 0

    def test_negative_beam_rejected(self):
        with pytest.raises(ValueError):
            LinkGrammarParser(beam=-1)
