"""Dictionary coverage: canonical frames for every word class.

A regression net over the hand-written lexicon: every listed word must
parse in at least one canonical frame for its class.  A dictionary
edit that strands a word fails here with the word's name in the test
id.
"""

import pytest

from repro.linkgrammar import LinkGrammarParser
from repro.linkgrammar.lexicon_data import ENTRIES

_PARSER = LinkGrammarParser(max_linkages=1)

# Class frames: {} is replaced by the word under test.
_FRAMES: dict[str, list[str]] = {
    "noun": [
        "the {} is normal .",
        "she denies {} .",
        "{} is normal .",
    ],
    "plural": ["the {} are normal .", "she denies {} ."],
    "unit": ["five {} ago she quit .", "weight of 154 {} ."],
    "verb": ["she {} pain .", "she {} ."],
    "adjective": ["the {} mass is stable .", "it is {} ."],
    "adverb": ["she {} smokes .", "she is {} a smoker ."],
    "preposition": ["she quit {} the surgery .", "pulse {} 84 ."],
    "determiner": ["{} mass is stable ."],
    "number-word": ["{} years ago she quit .", "she drinks {} beers ."],
}


def _entry_words(substring: str) -> list[str]:
    for words, expression in ENTRIES:
        if substring in words.split():
            return words.split()
    raise AssertionError(f"no entry containing {substring!r}")


def _parses_any(word: str, frames: list[str]) -> bool:
    for frame in frames:
        sentence = frame.format(word).split()
        if _PARSER.can_parse(sentence):
            return True
    return False


class TestWordClassCoverage:
    @pytest.mark.parametrize("word", _entry_words("pressure"))
    def test_singular_nouns(self, word):
        assert _parses_any(word, _FRAMES["noun"]), word

    @pytest.mark.parametrize("word", _entry_words("biopsies"))
    def test_plural_nouns(self, word):
        assert _parses_any(
            word, _FRAMES["plural"] + _FRAMES["noun"]
        ), word

    @pytest.mark.parametrize("word", _entry_words("years"))
    def test_unit_nouns(self, word):
        assert _parses_any(
            word, _FRAMES["unit"] + _FRAMES["noun"] + _FRAMES["plural"]
        ), word

    @pytest.mark.parametrize("word", _entry_words("quit"))
    def test_transitive_verbs(self, word):
        assert _parses_any(word, _FRAMES["verb"]), word

    @pytest.mark.parametrize("word", _entry_words("significant"))
    def test_adjectives(self, word):
        assert _parses_any(word, _FRAMES["adjective"]), word

    @pytest.mark.parametrize("word", _entry_words("never"))
    def test_adverbs(self, word):
        assert _parses_any(word, _FRAMES["adverb"]), word

    @pytest.mark.parametrize("word", _entry_words("for"))
    def test_prepositions(self, word):
        assert _parses_any(word, _FRAMES["preposition"]), word

    @pytest.mark.parametrize("word", _entry_words("the"))
    def test_determiners(self, word):
        assert _parses_any(word, _FRAMES["determiner"]), word

    @pytest.mark.parametrize("word", _entry_words("five"))
    def test_number_words(self, word):
        assert _parses_any(word, _FRAMES["number-word"]), word


class TestMultiConnectors:
    """@-connector behaviour: one connector, many links.

    These need the *cheapest* linkage, so they use a parser that
    extracts enough alternatives for cost ranking to matter
    (max_linkages=1 returns the first linkage found, not the best).
    """

    _BEST = LinkGrammarParser(max_linkages=8)

    def test_multiple_adjectives_stack(self):
        linkage = self._BEST.parse_one(
            "the solid benign palpable mass is stable .".split()
        )
        a_links = [l for l in linkage.links if l.label == "A"]
        assert len(a_links) == 3
        assert all(
            linkage.words[l.right] == "mass" for l in a_links
        )

    def test_mixed_an_and_a_modifiers(self):
        linkage = self._BEST.parse_one(
            "severe high blood pressure is present .".split()
        )
        labels = {l.label for l in linkage.links}
        assert "AN" in labels and "A" in labels

    def test_multiple_post_verbal_modifiers(self):
        linkage = self._BEST.parse_one(
            "she quit smoking five years ago with medication .".split()
        )
        mv_links = [
            l for l in linkage.links if l.label.startswith("MV")
        ]
        assert len(mv_links) >= 2
