"""Constituent tree derivation tests (§4's second parser output)."""

import pytest

from repro.linkgrammar import LinkGrammarParser, constituent_tree
from repro.nlp import analyze


def tree_of(text):
    document = analyze(text)
    tokens = document.tokens()
    words = [document.span_text(t).lower() for t in tokens]
    tags = [t.features.get("pos", "NN") for t in tokens]
    linkage = LinkGrammarParser().parse_one(words, tags)
    aligned = [
        "X" if tm is None else tags[tm] for tm in linkage.token_map
    ]
    return constituent_tree(linkage, aligned)


class TestStructure:
    def test_root_is_clause(self):
        assert tree_of("She has never smoked.").label == "S"

    def test_leaves_preserve_surface_order(self):
        tree = tree_of(
            "Her breast history is negative for any previous biopsies."
        )
        assert tree.leaves() == [
            "her", "breast", "history", "is", "negative", "for",
            "any", "previous", "biopsies",
        ]

    def test_verb_heads_a_vp(self):
        tree = tree_of("She denies alcohol use.")
        vps = tree.spans_with_label("VP")
        assert vps
        assert "denies" in vps[0].leaves()

    def test_subject_np_present(self):
        tree = tree_of("She denies alcohol use.")
        nps = tree.spans_with_label("NP")
        assert any(np.leaves() == ["she"] for np in nps)

    def test_pp_nests_in_predicate(self):
        tree = tree_of("History is negative for biopsies.")
        pps = tree.spans_with_label("PP")
        assert any(pp.leaves() == ["for", "biopsies"] for pp in pps)

    def test_participle_chain_nested_vps(self):
        tree = tree_of("She has never smoked.")
        vps = tree.spans_with_label("VP")
        assert len(vps) >= 2  # has > smoked

    def test_bracketed_is_balanced(self):
        rendered = tree_of("She quit smoking five years ago.").bracketed()
        assert rendered.count("(") == rendered.count(")")

    def test_every_word_appears_once(self):
        text = "Blood pressure is 144/90, pulse of 84."
        tree = tree_of(text)
        leaves = tree.leaves()
        assert len(leaves) == len(set(range(len(leaves))))
        assert "pressure" in leaves and "84" in leaves

    def test_fragment_tree_has_no_vp(self):
        tree = tree_of("Smoking history, 15 years.")
        assert tree.spans_with_label("VP") == []

    def test_guessed_tags_work_without_explicit_tags(self):
        document = analyze("She denies pain.")
        tokens = document.tokens()
        words = [document.span_text(t).lower() for t in tokens]
        linkage = LinkGrammarParser().parse_one(words)
        tree = constituent_tree(linkage)  # no tags
        assert "denies" in tree.leaves()
