"""Expression parsing and disjunct expansion."""

import pytest

from repro.errors import DictionaryError
from repro.linkgrammar.expressions import (
    Disjunct,
    expression_to_disjuncts,
    parse_expression,
)


def spans(disjuncts):
    """Readable (left labels, right labels, cost) set for assertions.

    Connector tuples are farthest-first; we reverse them back to
    expression (nearest-first) order for readability.
    """
    return {
        (
            tuple(c.label for c in reversed(d.left)),
            tuple(c.label for c in reversed(d.right)),
            d.cost,
        )
        for d in disjuncts
    }


class TestExpansion:
    def test_single_connector(self):
        assert spans(expression_to_disjuncts("S+")) == {((), ("S",), 0)}

    def test_conjunction_preserves_order(self):
        got = spans(expression_to_disjuncts("A- & D- & S+"))
        assert got == {(("A", "D"), ("S",), 0)}

    def test_disjunction(self):
        got = spans(expression_to_disjuncts("S+ or O-"))
        assert got == {((), ("S",), 0), (("O",), (), 0)}

    def test_optionality_adds_empty(self):
        got = spans(expression_to_disjuncts("{A-} & S+"))
        assert got == {((), ("S",), 0), (("A",), ("S",), 0)}

    def test_nested_braces(self):
        got = spans(expression_to_disjuncts("{A-} & {D-}"))
        assert ((), (), 0) in got
        assert (("A", "D"), (), 0) in got
        assert len(got) == 4

    def test_cost_brackets(self):
        got = spans(expression_to_disjuncts("[O-] or S+"))
        assert (("O",), (), 1) in got
        assert ((), ("S",), 0) in got

    def test_nested_cost(self):
        got = spans(expression_to_disjuncts("[[O-]]"))
        assert got == {(("O",), (), 2)}

    def test_parenthesized_grouping(self):
        got = spans(expression_to_disjuncts("(A- or D-) & S+"))
        assert got == {
            (("A",), ("S",), 0),
            (("D",), ("S",), 0),
        }

    def test_duplicate_disjuncts_keep_lowest_cost(self):
        got = spans(expression_to_disjuncts("S+ or [S+]"))
        assert got == {((), ("S",), 0)}

    def test_farthest_first_storage(self):
        [d] = expression_to_disjuncts("A- & D- & Wd-")
        # Expression order A, D, Wd is nearest-first; stored reversed.
        assert [c.label for c in d.left] == ["Wd", "D", "A"]

    def test_multi_connector_preserved(self):
        [d] = expression_to_disjuncts("@A- & S+")
        assert d.left[0].multi


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "S+ &",
            "& S+",
            "{S+",
            "S+}",
            "(S+",
            "[S+",
            "S+ or",
            "s+",
            "S + O-",
        ],
    )
    def test_malformed_expressions(self, bad):
        with pytest.raises(DictionaryError):
            expression_to_disjuncts(bad)

    def test_empty_parens_allowed(self):
        got = spans(expression_to_disjuncts("() or S+"))
        assert ((), (), 0) in got


class TestAst:
    def test_or_flattening_not_required(self):
        # Three-way or parses without error and expands fully.
        got = spans(expression_to_disjuncts("A- or D- or S+"))
        assert len(got) == 3

    def test_precedence_and_binds_tighter(self):
        got = spans(expression_to_disjuncts("A- & D- or S+"))
        assert got == {(("A", "D"), (), 0), ((), ("S",), 0)}
