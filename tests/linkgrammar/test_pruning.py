"""Disjunct power-pruning: pure speed, zero behaviour change.

The Sleator–Temperley pruning pass deletes disjuncts whose connectors
cannot match any surviving connector in the allowed direction before
the O(n³) recurrence runs.  Pruned disjuncts can never take part in a
complete linkage, so linkages with pruning on must equal linkages with
pruning off — on the paper's Figure 1 sentence and across a generated
corpus sample — while the disjunct count entering the recurrence
strictly drops.
"""

import pytest

from repro.errors import ParseFailure
from repro.linkgrammar import LinkGrammarParser
from repro.nlp import analyze
from repro.synth import CohortSpec, RecordGenerator

FIGURE1 = (
    "blood pressure is 144/90 , pulse of 84 , temperature of 98.3 , "
    "and weight of 154 pounds ."
).split()


def canonical(linkages):
    return sorted((lk.cost, lk.links) for lk in linkages)


def corpus_sentences(max_tokens: int = 12, limit: int = 10):
    """Distinct (words, tags) sentences from a small generated cohort."""
    records, _ = RecordGenerator(seed=21).generate_cohort(
        CohortSpec(
            size=3,
            smoking_counts={
                "never": 1, "current": 1, "former": 1,
            },
        )
    )
    seen: set[tuple] = set()
    out: list[tuple[list[str], list[str]]] = []
    for record in records:
        document = analyze(record.raw_text)
        for sentence in document.sentences():
            tokens = document.tokens(sentence)
            if not tokens or len(tokens) > max_tokens:
                continue
            words = [document.span_text(t).lower() for t in tokens]
            tags = [t.features.get("pos", "NN") for t in tokens]
            key = tuple(words)
            if key in seen:
                continue
            seen.add(key)
            out.append((words, tags))
            if len(out) >= limit:
                return out
    return out


class TestFigure1:
    def test_pruning_preserves_all_linkages(self):
        pruned = LinkGrammarParser(prune=True)
        unpruned = LinkGrammarParser(prune=False)
        assert canonical(pruned.parse(FIGURE1)) == canonical(
            unpruned.parse(FIGURE1)
        )

    def test_pruning_strictly_reduces_disjuncts(self):
        parser = LinkGrammarParser(prune=True)
        parser.parse(FIGURE1)
        stats = parser.stats
        assert stats.disjuncts_after < stats.disjuncts_before
        assert stats.prune_ratio() > 0.5

    def test_pruning_off_counts_match(self):
        parser = LinkGrammarParser(prune=False)
        parser.parse(FIGURE1)
        assert (
            parser.stats.disjuncts_after
            == parser.stats.disjuncts_before
        )


class TestCorpusSample:
    @pytest.mark.parametrize(
        "words,tags",
        corpus_sentences(),
        ids=lambda value: " ".join(value)[:40]
        if isinstance(value, list) and value and value[0].islower()
        else None,
    )
    def test_equivalence_on_corpus(self, words, tags):
        pruned = LinkGrammarParser(prune=True)
        unpruned = LinkGrammarParser(prune=False)
        try:
            with_prune = canonical(pruned.parse(words, tags))
        except ParseFailure:
            with pytest.raises(ParseFailure):
                unpruned.parse(words, tags)
            return
        assert with_prune == canonical(unpruned.parse(words, tags))
        assert (
            pruned.stats.disjuncts_after
            <= pruned.stats.disjuncts_before
        )


class TestStats:
    def test_reset(self):
        parser = LinkGrammarParser()
        parser.parse(FIGURE1)
        parser.stats.reset()
        assert parser.stats.sentences == 0
        assert parser.stats.parse_seconds == 0.0

    def test_failures_counted(self):
        parser = LinkGrammarParser()
        with pytest.raises(ParseFailure):
            parser.parse("blood pressure : 144/90".split(),
                         ["NN", "NN", ":", "CD"])
        assert parser.stats.failures == 1
        assert parser.stats.sentences == 1

    def test_parse_time_accumulates(self):
        parser = LinkGrammarParser()
        parser.parse(FIGURE1)
        assert parser.stats.parse_seconds > 0.0
