"""Null-word (robust) parsing tests."""

import pytest

from repro.errors import ParseFailure
from repro.linkgrammar import LinkGrammarParser


@pytest.fixture(scope="module")
def parser():
    return LinkGrammarParser(max_linkages=4)


class TestParseRobust:
    def test_parseable_sentence_skips_nothing(self, parser):
        linkage, skipped = parser.parse_robust(
            "she has never smoked .".split()
        )
        assert skipped == []
        assert linkage.is_connected()

    def test_colon_fragment_recovers_by_skipping_colon(self, parser):
        words = "blood pressure : 144/90".split()
        linkage, skipped = parser.parse_robust(words)
        assert skipped == [2]
        assert "pressure" in linkage.words

    def test_token_map_refers_to_original_indices(self, parser):
        words = "blood pressure : 144/90".split()
        linkage, _ = parser.parse_robust(words)
        mapped = [tm for tm in linkage.token_map if tm is not None]
        # 144/90 is original token 3, even though token 2 was skipped.
        assert 3 in mapped
        assert 2 not in mapped

    def test_unknown_word_skipped_first(self, parser):
        words = "she zzgarbleq has never smoked .".split()
        linkage, skipped = parser.parse_robust(words)
        assert skipped == [1]

    def test_hopeless_input_still_fails(self, parser):
        with pytest.raises(ParseFailure):
            parser.parse_robust(["zz", "qq", "ww"], max_skips=1)

    def test_two_skips_when_allowed(self, parser):
        words = "she : has never smoked : .".split()
        with pytest.raises(ParseFailure):
            parser.parse_robust(words, max_skips=1)
        linkage, skipped = parser.parse_robust(words, max_skips=2)
        assert len(skipped) == 2

    def test_linkage_invariants_hold_after_skipping(self, parser):
        linkage, _ = parser.parse_robust(
            "blood pressure : 144/90".split()
        )
        assert linkage.is_planar()
        assert linkage.is_connected()
