"""Connector parsing and matching rules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DictionaryError
from repro.linkgrammar.connectors import (
    Connector,
    connectors_match,
    link_label,
    parse_connector,
    subscripts_compatible,
)


class TestParseConnector:
    def test_simple(self):
        c = parse_connector("S+")
        assert c.name == "S" and c.direction == "+" and not c.multi

    def test_subscripted(self):
        c = parse_connector("Ss-")
        assert c.name == "S" and c.subscript == "s"
        assert c.direction == "-"

    def test_multi(self):
        c = parse_connector("@MVp+")
        assert c.multi and c.name == "MV" and c.subscript == "p"

    def test_wildcard_subscript(self):
        assert parse_connector("S*+").subscript == "*"

    @pytest.mark.parametrize("bad", ["", "s+", "S", "S?", "+S", "@+"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(DictionaryError):
            parse_connector(bad)

    def test_label_excludes_direction(self):
        assert parse_connector("MVp+").label == "MVp"


class TestMatching:
    def test_plain_match(self):
        assert connectors_match(parse_connector("S+"), parse_connector("S-"))

    def test_direction_required(self):
        assert not connectors_match(
            parse_connector("S-"), parse_connector("S+")
        )
        assert not connectors_match(
            parse_connector("S+"), parse_connector("S+")
        )

    def test_name_mismatch(self):
        assert not connectors_match(
            parse_connector("S+"), parse_connector("O-")
        )

    def test_subscript_extension_matches(self):
        # Ss+ matches S- (absent positions are wildcards).
        assert connectors_match(
            parse_connector("Ss+"), parse_connector("S-")
        )
        assert connectors_match(
            parse_connector("S+"), parse_connector("Ss-")
        )

    def test_subscript_conflict_rejected(self):
        assert not connectors_match(
            parse_connector("Ss+"), parse_connector("Sp-")
        )

    def test_star_matches_anything(self):
        assert connectors_match(
            parse_connector("S*+"), parse_connector("Sp-")
        )

    def test_prefix_names_do_not_match(self):
        # MV and M are distinct connector types.
        assert not connectors_match(
            parse_connector("MV+"), parse_connector("M-")
        )

    @given(
        st.text(alphabet="ab*", max_size=4),
        st.text(alphabet="ab*", max_size=4),
    )
    def test_subscript_compatibility_symmetric(self, a, b):
        assert subscripts_compatible(a, b) == subscripts_compatible(b, a)


class TestLinkLabel:
    def test_more_specific_side_wins(self):
        assert link_label(
            parse_connector("S+"), parse_connector("Ss-")
        ) == "Ss"
        assert link_label(
            parse_connector("Ss+"), parse_connector("S-")
        ) == "Ss"
