"""Sanity suite over the link grammar dictionary data."""

import pytest

from repro.errors import DictionaryError
from repro.linkgrammar.dictionary import Dictionary, _substitute_macros
from repro.linkgrammar.expressions import expression_to_disjuncts
from repro.linkgrammar.lexicon_data import (
    ENTRIES,
    MACROS,
    TAG_DEFAULTS,
)


class TestDataIntegrity:
    @pytest.mark.parametrize(
        "words,expression",
        ENTRIES,
        ids=[w.split()[0] for w, _ in ENTRIES],
    )
    def test_every_entry_expression_expands(self, words, expression):
        disjuncts = expression_to_disjuncts(
            _substitute_macros(expression)
        )
        assert disjuncts, f"empty expansion for {words[:30]!r}"

    @pytest.mark.parametrize(
        "tag,expression", TAG_DEFAULTS, ids=[t for t, _ in TAG_DEFAULTS]
    )
    def test_every_tag_default_expands(self, tag, expression):
        assert expression_to_disjuncts(_substitute_macros(expression))

    def test_macros_resolve_completely(self):
        for name, body in MACROS.items():
            resolved = _substitute_macros(body)
            assert "<" not in resolved, name

    def test_unresolved_macro_raises(self):
        with pytest.raises(DictionaryError):
            _substitute_macros("<does-not-exist>")

    def test_no_duplicate_words_across_word_lists(self):
        # A word may appear in several entries (disjuncts merge), but
        # not twice within one entry's word list.
        for words, _ in ENTRIES:
            tokens = words.split()
            assert len(tokens) == len(set(tokens)), words[:40]

    def test_disjunct_counts_bounded(self):
        # Expansion explosion guard: no entry may expand into an
        # unmanageable disjunct set.
        d = Dictionary()
        for words, _ in ENTRIES:
            word = words.split()[0]
            assert len(d.disjuncts(word)) < 5000, word

    def test_tag_default_order_longest_prefix_first(self):
        # PRP$ must precede PRP, NNS/NNP must precede NN.
        tags = [t for t, _ in TAG_DEFAULTS]
        assert tags.index("PRP$") < tags.index("PRP")
        assert tags.index("NNS") < tags.index("NN")
        assert tags.index("NNP") < tags.index("NN")

    def test_wall_entry_present(self):
        d = Dictionary()
        assert "###LEFT-WALL###" in d
