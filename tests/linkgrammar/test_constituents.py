"""Constituent-role derivation tests."""

import pytest

from repro.linkgrammar import (
    LinkGrammarParser,
    Role,
    assign_roles,
    head_words,
)


@pytest.fixture(scope="module")
def parser():
    return LinkGrammarParser()


def roles_by_word(parser, sentence):
    linkage = parser.parse_one(sentence.split())
    roles = assign_roles(linkage)
    return {linkage.words[i]: role for i, role in roles.items()}, linkage


class TestRoles:
    def test_simple_svo(self, parser):
        roles, _ = roles_by_word(parser, "she denies alcohol use .")
        assert roles["she"] is Role.SUBJECT
        assert roles["denies"] is Role.VERB
        assert roles["use"] is Role.OBJECT
        assert roles["alcohol"] is Role.OBJECT  # part of the object NP

    def test_be_sentence(self, parser):
        roles, _ = roles_by_word(parser, "she is currently a smoker .")
        assert roles["she"] is Role.SUBJECT
        assert roles["is"] is Role.VERB
        assert roles["smoker"] is Role.OBJECT
        assert roles["currently"] is Role.SUPPLEMENT

    def test_participle_chain_is_verb(self, parser):
        roles, _ = roles_by_word(parser, "she has never smoked .")
        assert roles["has"] is Role.VERB
        assert roles["smoked"] is Role.VERB
        assert roles["never"] is Role.VERB  # pre-verb adverb groups in

    def test_supplement_time_adjunct(self, parser):
        roles, _ = roles_by_word(parser, "she quit smoking five years ago .")
        assert roles["ago"] is Role.SUPPLEMENT
        assert roles["quit"] is Role.VERB

    def test_subject_np_modifiers(self, parser):
        roles, _ = roles_by_word(
            parser, "her breast history is negative for biopsies ."
        )
        assert roles["history"] is Role.SUBJECT
        assert roles["her"] is Role.SUBJECT
        assert roles["breast"] is Role.SUBJECT
        assert roles["negative"] is Role.OBJECT  # predicate complement

    def test_wall_is_other(self, parser):
        linkage = parser.parse_one("she has never smoked .".split())
        assert assign_roles(linkage)[0] is Role.OTHER

    def test_fragment_has_no_subject_or_verb(self, parser):
        linkage = parser.parse_one("smoking history , 15 years .".split())
        roles = set(assign_roles(linkage).values())
        assert Role.VERB not in roles
        assert Role.SUBJECT not in roles


class TestHeadWords:
    def test_modifiers_are_not_heads(self, parser):
        linkage = parser.parse_one(
            "her breast history is negative for biopsies .".split()
        )
        heads = {linkage.words[i] for i in head_words(linkage)}
        assert "history" in heads
        assert "her" not in heads
        assert "breast" not in heads

    def test_numeric_determiner_not_head(self, parser):
        linkage = parser.parse_one("she drinks two beers per day .".split())
        heads = {linkage.words[i] for i in head_words(linkage)}
        assert "beers" in heads
        assert "two" not in heads
