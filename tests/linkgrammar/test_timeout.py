"""Per-sentence parse budget: ParseTimeout and graceful degradation.

A sentence that blows its wall-clock budget must behave exactly like a
sentence the grammar cannot parse: the extractor falls back to the
paper's linguistic patterns and still produces values.
"""

import pytest

from repro.errors import ParseFailure, ParseTimeout
from repro.extraction.numeric import NumericExtractor
from repro.linkgrammar import LinkGrammarParser
from repro.runtime import tracing
from repro.runtime.tracing import Tracer
from repro.synth import CohortSpec, RecordGenerator

FIGURE1 = (
    "blood pressure is 144/90 , pulse of 84 , temperature of 98.3 , "
    "and weight of 154 pounds ."
).split()


@pytest.fixture(scope="module")
def cohort():
    return RecordGenerator(seed=23).generate_cohort(
        CohortSpec(
            size=4,
            smoking_counts={"never": 2, "current": 1, "former": 1},
        )
    )


class TestBudgetValidation:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            LinkGrammarParser(time_budget=-1.0)

    def test_none_budget_never_times_out(self):
        parser = LinkGrammarParser(time_budget=None)
        assert parser.parse_one(FIGURE1) is not None
        assert parser.stats.timeouts == 0


class TestTimeoutRaised:
    def test_zero_budget_times_out_immediately(self):
        parser = LinkGrammarParser(time_budget=0.0)
        with pytest.raises(ParseTimeout) as excinfo:
            parser.parse_one(FIGURE1)
        assert "budget" in str(excinfo.value)
        assert excinfo.value.budget == 0.0

    def test_timeout_is_a_parse_failure(self):
        # Every existing `except ParseFailure` fallback site must also
        # catch timeouts — that is what makes degradation automatic.
        assert issubclass(ParseTimeout, ParseFailure)

    def test_timeout_counted_in_stats(self):
        parser = LinkGrammarParser(time_budget=0.0)
        with pytest.raises(ParseTimeout):
            parser.parse(FIGURE1)
        assert parser.stats.timeouts == 1
        assert parser.stats.failures == 1
        assert "timeouts" in parser.stats.to_dict()

    def test_generous_budget_parses_normally(self):
        parser = LinkGrammarParser(time_budget=60.0)
        assert parser.parse_one(FIGURE1) is not None
        assert parser.stats.timeouts == 0


class TestDegradation:
    def test_timed_out_extractor_matches_pattern_only(self, cohort):
        """Fallback equivalence: budget=0 ≡ linkage disabled."""
        records, _ = cohort
        timed_out = NumericExtractor(
            parser=LinkGrammarParser(time_budget=0.0)
        )
        pattern_only = NumericExtractor(use_linkage=False)
        for record in records:
            assert timed_out.extract_record(record) == \
                pattern_only.extract_record(record)
        assert timed_out.parser.stats.timeouts > 0

    def test_timeout_emits_trace_event(self, cohort):
        records, _ = cohort
        extractor = NumericExtractor(
            parser=LinkGrammarParser(time_budget=0.0)
        )
        tracer = Tracer()
        with tracing.activated(tracer):
            with tracer.span("record", records[0].patient_id):
                extractor.extract_record(records[0])
        events = [
            span
            for root in tracer.roots
            for span in root.walk()
            if span.kind == "parse-timeout"
        ]
        assert events
        assert events[0].attributes["budget_s"] == 0.0

    def test_timeout_result_cached(self):
        extractor = NumericExtractor(
            parser=LinkGrammarParser(time_budget=0.0)
        )
        words = tuple(FIGURE1)
        assert extractor.linkage_cache.lookup(
            extractor.parser, words
        ) is None
        assert extractor.parser.stats.timeouts == 1
        # Second lookup hits the cached timeout marker: no re-parse.
        assert extractor.linkage_cache.lookup(
            extractor.parser, words
        ) is None
        assert extractor.parser.stats.timeouts == 1
