"""Lemmatizer tests: exceptions, detachment rules, POS constraints."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.morphology import Lemmatizer, lemma, pluralize


class TestExceptions:
    @pytest.mark.parametrize(
        "surface,expected",
        [
            ("children", "child"),
            ("women", "woman"),
            ("diagnoses", "diagnosis"),
            ("metastases", "metastasis"),
            ("diverticula", "diverticulum"),
            ("vertebrae", "vertebra"),
            ("bronchi", "bronchus"),
            ("appendices", "appendix"),
        ],
    )
    def test_irregular_nouns(self, surface, expected):
        assert lemma(surface, "noun") == expected

    @pytest.mark.parametrize(
        "surface,expected",
        [
            ("underwent", "undergo"),
            ("was", "be"),
            ("has", "have"),
            ("quit", "quit"),
            ("drank", "drink"),
            ("felt", "feel"),
            ("swollen", "swell"),
        ],
    )
    def test_irregular_verbs(self, surface, expected):
        assert lemma(surface, "verb") == expected

    def test_irregular_adjectives(self):
        assert lemma("worse", "adjective") == "bad"
        assert lemma("thinner", "adjective") == "thin"


class TestDetachmentRules:
    @pytest.mark.parametrize(
        "surface,expected",
        [
            ("pressures", "pressure"),
            ("biopsies", "biopsy"),
            ("masses", "mass"),
            ("allergies", "allergy"),
            ("pregnancies", "pregnancy"),
            ("lesions", "lesion"),
        ],
    )
    def test_noun_plurals(self, surface, expected):
        assert lemma(surface, "noun") == expected

    @pytest.mark.parametrize(
        "surface,expected",
        [
            ("denies", "deny"),
            ("denied", "deny"),
            ("smokes", "smoke"),
            ("smoked", "smoke"),
            ("smoking", "smoke"),
            ("reveals", "reveal"),
            ("stopped", "stop"),
        ],
    )
    def test_verb_inflections(self, surface, expected):
        assert lemma(surface, "verb") == expected

    def test_paper_deny_example(self):
        # §3.3: "denies," "denied" and "deny" become the same feature.
        assert {lemma(w, "verb") for w in ["denies", "denied", "deny"]} == {
            "deny"
        }


class TestNonInflected:
    @pytest.mark.parametrize(
        "word", ["diabetes", "pancreas", "arthritis", "status", "uterus"]
    )
    def test_disease_names_unchanged(self, word):
        assert lemma(word, "noun") == word

    def test_case_insensitive(self):
        assert lemma("Diabetes") == "diabetes"


class TestUnknownWords:
    def test_unknown_word_returned_as_is(self):
        assert lemma("xyzzyq") == "xyzzyq"

    def test_unknown_inflection_falls_back_to_surface(self):
        # No lexicon entry validates any stem.
        assert lemma("blorpings", "noun") == "blorpings"


class TestCandidates:
    def test_candidates_include_valid_stem(self):
        lem = Lemmatizer()
        assert "pressure" in lem.candidates("pressures", "noun")

    def test_candidates_end_with_surface(self):
        lem = Lemmatizer()
        cands = lem.candidates("weirdnesses", "noun")
        assert cands[-1] == "weirdnesses" or "weirdnesses" in cands

    def test_custom_known_predicate(self):
        vocab = {"cholecystectomy"}
        lem = Lemmatizer(known=lambda w: w in vocab)
        assert lem.lemma("cholecystectomies", "noun") == "cholecystectomy"


class TestPennTagMapping:
    def test_penn_tags_accepted(self):
        assert lemma("denies", "VBZ") == "deny"
        assert lemma("masses", "NNS") == "mass"
        assert lemma("larger", "JJR") == "large"


class TestProperties:
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=15))
    def test_lemma_is_idempotent(self, word):
        first = lemma(word)
        assert lemma(first) == first or len(lemma(first)) <= len(first)

    @given(st.sampled_from([
        "pressure", "biopsy", "mass", "lesion", "pregnancy", "history",
        "allergy", "symptom", "murmur", "nodule",
    ]))
    def test_pluralize_then_lemmatize_roundtrip(self, noun):
        assert lemma(pluralize(noun), "noun") == noun
