"""Inflector tests: pluralization, conjugation, phrase variants."""

import pytest

from repro.morphology import conjugate, pluralize, variants


class TestPluralize:
    @pytest.mark.parametrize(
        "noun,expected",
        [
            ("pregnancy", "pregnancies"),
            ("birth", "births"),
            ("mass", "masses"),
            ("biopsy", "biopsies"),
            ("child", "children"),
            ("woman", "women"),
            ("box", "boxes"),
            ("brush", "brushes"),
            ("knife", "knives"),
            ("day", "days"),  # vowel+y stays regular
        ],
    )
    def test_plural_forms(self, noun, expected):
        assert pluralize(noun) == expected


class TestConjugate:
    def test_regular_verb(self):
        assert set(conjugate("smoke")) == {"smokes", "smoked", "smoking"}

    def test_y_verb(self):
        assert set(conjugate("deny")) == {"denies", "denied", "denying"}

    def test_doubling_verb(self):
        forms = set(conjugate("stop"))
        assert {"stops", "stopped", "stopping"} <= forms

    def test_irregular_verb_includes_exceptions(self):
        forms = set(conjugate("undergo"))
        assert "underwent" in forms
        assert "undergone" in forms

    def test_sibilant_verb(self):
        assert "pushes" in conjugate("push")

    def test_base_form_not_in_output(self):
        assert "smoke" not in conjugate("smoke")


class TestVariants:
    def test_single_noun(self):
        assert variants("pregnancy") == ["pregnancy", "pregnancies"]

    def test_multiword_head_inflection(self):
        assert variants("live birth") == ["live birth", "live births"]

    def test_verb_phrase(self):
        vs = variants("smoke", pos="verb")
        assert vs[0] == "smoke"
        assert "smokes" in vs and "smoked" in vs

    def test_original_first(self):
        assert variants("blood pressure")[0] == "blood pressure"

    def test_empty_phrase(self):
        assert variants("") == []

    def test_case_normalized(self):
        assert variants("Blood Pressure")[0] == "blood pressure"

    def test_unknown_pos_returns_only_original(self):
        assert variants("blood pressure", pos="adjective") == [
            "blood pressure"
        ]
