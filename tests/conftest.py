"""Shared fixtures for the whole test suite.

``HOSTILE_TEXTS`` is the canonical collection of malformed, degenerate,
and adversarial inputs a real clinic would eventually produce.  It was
born in ``tests/test_failure_injection.py`` and is promoted here so the
integration, runner, and CLI suites can all push the same hostile
corpus through their respective entry points.
"""

import pytest

from repro.records import PatientRecord, Section

HOSTILE_TEXTS = [
    "",
    " \n\t ",
    "." * 50,
    "1/2/3/4/5",
    "////////",
    "((((((((",
    "a" * 500,
    "\x00\x01 binary junk \xff",
    "🩺 unicode clinical note ❤️",
    "Blood pressure is 144/90" * 10,
]


@pytest.fixture(params=HOSTILE_TEXTS, ids=lambda t: repr(t[:12]))
def hostile_text(request):
    """One hostile input string per parametrized test instance."""
    return request.param


@pytest.fixture(scope="session")
def adversarial_corpus():
    """One hostile record per registered style pack.

    The surface-adversarial counterpart to ``hostile_corpus``: every
    :data:`repro.synth.STYLE_PACKS` entry contributes one record
    dictated its way (terse fragments, OCR noise, mangled headers,
    extra Labs section, …).  Promoted here so the fault-matrix and
    service shard-parity suites chew on adversarial-but-wellformed
    text with the same machinery they use for malformed text.
    """
    from repro.synth import STYLE_PACKS, CohortSpec

    spec = CohortSpec(size=1, smoking_counts={"current": 1})
    records = []
    for pack in STYLE_PACKS:
        cohort, _ = pack.generate_cohort(spec, seed=1234)
        record = cohort[0]
        record.patient_id = f"adversarial-{pack.name}"
        records.append(record)
    return records


@pytest.fixture(scope="session")
def hostile_corpus():
    """Patient records whose section bodies are the hostile strings.

    Every hostile text appears both as a numeric-bearing section
    (``Vitals``) and as a categorical-bearing one (``Social History``),
    so all three extractor kinds chew on it during a corpus run.
    """
    return [
        PatientRecord(
            patient_id=f"hostile-{i}",
            sections=[
                Section("Vitals", text),
                Section("Social History", text),
            ],
        )
        for i, text in enumerate(HOSTILE_TEXTS)
    ]
