"""Shared fixtures for the whole test suite.

``HOSTILE_TEXTS`` is the canonical collection of malformed, degenerate,
and adversarial inputs a real clinic would eventually produce.  It was
born in ``tests/test_failure_injection.py`` and is promoted here so the
integration, runner, and CLI suites can all push the same hostile
corpus through their respective entry points.
"""

import pytest

from repro.records import PatientRecord, Section

HOSTILE_TEXTS = [
    "",
    " \n\t ",
    "." * 50,
    "1/2/3/4/5",
    "////////",
    "((((((((",
    "a" * 500,
    "\x00\x01 binary junk \xff",
    "🩺 unicode clinical note ❤️",
    "Blood pressure is 144/90" * 10,
]


@pytest.fixture(params=HOSTILE_TEXTS, ids=lambda t: repr(t[:12]))
def hostile_text(request):
    """One hostile input string per parametrized test instance."""
    return request.param


@pytest.fixture(scope="session")
def hostile_corpus():
    """Patient records whose section bodies are the hostile strings.

    Every hostile text appears both as a numeric-bearing section
    (``Vitals``) and as a categorical-bearing one (``Social History``),
    so all three extractor kinds chew on it during a corpus run.
    """
    return [
        PatientRecord(
            patient_id=f"hostile-{i}",
            sections=[
                Section("Vitals", text),
                Section("Social History", text),
            ],
        )
        for i, text in enumerate(HOSTILE_TEXTS)
    ]
