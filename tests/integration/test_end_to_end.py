"""End-to-end integration: generate → save files → load → extract →
store → query (the full Figure 2 architecture)."""

import pytest

from repro import (
    CohortSpec,
    RecordExtractor,
    RecordGenerator,
    ResultStore,
    load_records,
    save_records,
)


@pytest.fixture(scope="module")
def pipeline_run(tmp_path_factory):
    directory = tmp_path_factory.mktemp("notes")
    spec = CohortSpec(
        size=14,
        smoking_counts={"never": 7, "current": 4, "former": 2, None: 1},
    )
    records, golds = RecordGenerator(seed=21).generate_cohort(spec)
    save_records(records, directory)
    loaded = list(load_records(directory))

    extractor = RecordExtractor()
    extractor.train_categorical(records, golds)
    results = extractor.extract_all(loaded)

    store = ResultStore()
    store.save_all(results)
    return loaded, golds, results, store


class TestEndToEnd:
    def test_all_records_processed(self, pipeline_run):
        loaded, golds, results, store = pipeline_run
        assert len(results) == 14
        assert len(store.patients()) == 14

    def test_numeric_values_in_store_match_gold(self, pipeline_run):
        loaded, golds, results, store = pipeline_run
        golds_by_id = {g.patient_id: g for g in golds}
        for record in loaded:
            gold = golds_by_id[record.patient_id]
            pulse = store.numeric_value(record.patient_id, "pulse")
            assert pulse == gold.numeric["pulse"]
            bp = store.numeric_value(record.patient_id, "blood_pressure")
            assert bp == tuple(gold.numeric["blood_pressure"])

    def test_terms_stored(self, pipeline_run):
        loaded, golds, results, store = pipeline_run
        total = sum(
            len(store.terms(pid, "other_past_medical_history"))
            for pid in store.patients()
        )
        assert total > 0

    def test_categorical_training_labels_recovered(self, pipeline_run):
        # Trained and evaluated on the same data: ID3 should fit the
        # training cohort nearly perfectly (it memorizes pure splits).
        loaded, golds, results, store = pipeline_run
        golds_by_id = {g.patient_id: g for g in golds}
        correct = total = 0
        for record in loaded:
            expected = golds_by_id[record.patient_id].categorical[
                "smoking"
            ]
            if expected is None:
                continue
            got = store.categorical_value(record.patient_id, "smoking")
            total += 1
            correct += got == expected
        assert correct / total >= 0.9

    def test_cohort_analytics(self, pipeline_run):
        loaded, golds, results, store = pipeline_run
        distribution = store.label_distribution("smoking")
        assert sum(distribution.values()) >= 13
        summary = store.numeric_summary("weight")
        assert summary is not None and summary["count"] == 14
