"""Service end-to-end: the daemon path equals the batch path.

* a corpus submitted through the live service yields a result store
  bit-for-bit identical to the batch engine's on the same records;
* the hostile corpus flows through the service unharmed;
* an injected poison is quarantined through the service exactly as
  the batch runner quarantines it — same record, same store digest;
* the real CLI (``repro serve`` / ``repro submit``) round-trips a
  corpus byte-identically to ``repro extract``, drains cleanly on
  SIGTERM, and leaves no orphaned provenance rows.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.client import ServiceClient
from repro.extraction import RecordExtractor
from repro.runtime import (
    CorpusRunner,
    FaultPlan,
    ResilientCorpusRunner,
    RetryPolicy,
)
from repro.runtime.service import ExtractionService, ServiceConfig
from repro.storage import ResultStore
from repro.synth import CohortSpec, RecordGenerator

FAST_POLICY = RetryPolicy(max_attempts=2, backoff_base_s=0.0)


@pytest.fixture(scope="module")
def cohort():
    records, _ = RecordGenerator(seed=41).generate_cohort(
        CohortSpec(
            size=5,
            smoking_counts={"never": 3, "current": 1, None: 1},
        )
    )
    return records


@pytest.fixture(scope="module")
def baseline(cohort):
    return CorpusRunner(RecordExtractor()).run(cohort)


def _store(path, results, quarantine=()):
    store = ResultStore(path)
    store.store_many(results)
    if quarantine:
        store.save_quarantine(list(quarantine))
    store.close()
    return path


def _serve(tmp_path, **kwargs):
    kwargs.setdefault("policy", FAST_POLICY)
    config = kwargs.pop("config", None) or ServiceConfig(
        socket_path=str(tmp_path / "svc.sock"), linger_s=0.01
    )
    service = ExtractionService(config=config, **kwargs)
    service.start()
    return service, config.socket_path


class TestServiceEqualsBatch:
    def test_store_bit_identical_to_batch_engine(
        self, cohort, baseline, tmp_path
    ):
        service, path = _serve(
            tmp_path, extractor=RecordExtractor()
        )
        try:
            with ServiceClient(socket_path=path) as client:
                results, quarantined = client.extract_many(cohort)
        finally:
            service.stop(timeout=30)
        assert quarantined == []
        a = _store(tmp_path / "service.db", results)
        b = _store(tmp_path / "batch.db", baseline)
        assert a.read_bytes() == b.read_bytes()

    def test_hostile_corpus_through_service(
        self, hostile_corpus, tmp_path
    ):
        service, path = _serve(
            tmp_path, extractor=RecordExtractor()
        )
        try:
            with ServiceClient(socket_path=path) as client:
                results, quarantined = client.extract_many(
                    hostile_corpus
                )
        finally:
            service.stop(timeout=30)
        assert quarantined == []
        plain = CorpusRunner(RecordExtractor()).run(hostile_corpus)
        a = _store(tmp_path / "service.db", results)
        b = _store(tmp_path / "plain.db", plain)
        assert a.read_bytes() == b.read_bytes()

    def test_adversarial_corpus_through_service(
        self, adversarial_corpus, tmp_path
    ):
        # one record per style pack: OCR noise, mangled headers,
        # run-on sections, extra Labs — daemon path must equal the
        # batch path byte-for-byte on all of them
        service, path = _serve(
            tmp_path, extractor=RecordExtractor()
        )
        try:
            with ServiceClient(socket_path=path) as client:
                results, quarantined = client.extract_many(
                    adversarial_corpus
                )
        finally:
            service.stop(timeout=30)
        assert quarantined == []
        plain = CorpusRunner(RecordExtractor()).run(
            adversarial_corpus
        )
        a = _store(tmp_path / "service.db", results)
        b = _store(tmp_path / "plain.db", plain)
        assert a.read_bytes() == b.read_bytes()


class TestServiceQuarantineEqualsBatchQuarantine:
    def test_same_poison_same_store(self, cohort, tmp_path):
        plan = "raise@2"
        batch_runner = ResilientCorpusRunner(
            RecordExtractor(),
            chunk_size=2,
            fault_plan=FaultPlan.parse(plan),
            policy=FAST_POLICY,
        )
        batch_results = batch_runner.run(cohort)
        assert len(batch_runner.quarantine) == 1

        service, path = _serve(
            tmp_path,
            extractor=RecordExtractor(),
            fault_plan=FaultPlan.parse(plan),
            config=ServiceConfig(
                socket_path=str(tmp_path / "svc.sock"),
                max_batch=2,
                linger_s=0.05,
            ),
        )
        try:
            with ServiceClient(socket_path=path) as client:
                results, quarantined = client.extract_many(cohort)
        finally:
            service.stop(timeout=30)

        assert [index for index, _ in quarantined] == [2]
        assert [e.record_id for e in service.quarantine] == [
            batch_runner.quarantine[0].record_id
        ]
        assert service.quarantine[0].record_index == 2

        a = ResultStore(tmp_path / "service.db")
        a.store_many(results)
        a.save_quarantine(service.quarantine)
        b = ResultStore(tmp_path / "batch.db")
        b.store_many(batch_results)
        b.save_quarantine(batch_runner.quarantine)
        assert a.content_digest() == b.content_digest()
        assert a.missing_provenance() == []
        a.close()
        b.close()


class TestShardedStoreEqualsBatch:
    """Sharded serving is invisible in the stored artifacts."""

    def test_merged_partitions_byte_identical_to_batch(
        self, cohort, tmp_path
    ):
        """Two forked shards, a poison record, server-side store.

        The partitions merged at drain must be byte-for-byte the
        store a batch run writes — results, provenance, and the
        quarantine row (same global record index, same traceback
        digest) included.
        """
        plan = "raise@2"
        batch_runner = ResilientCorpusRunner(
            RecordExtractor(),
            chunk_size=2,
            fault_plan=FaultPlan.parse(plan),
            policy=FAST_POLICY,
        )
        batch_results = batch_runner.run(cohort)
        batch_db = _store(
            tmp_path / "batch.db",
            batch_results,
            batch_runner.quarantine,
        )

        service_db = tmp_path / "sharded.db"
        service, path = _serve(
            tmp_path,
            extractor=RecordExtractor(),
            fault_plan=FaultPlan.parse(plan),
            config=ServiceConfig(
                socket_path=str(tmp_path / "svc.sock"),
                max_batch=2,
                linger_s=0.01,
                shards=2,
                store_path=str(service_db),
            ),
        )
        try:
            with ServiceClient(socket_path=path) as client:
                results, quarantined = client.extract_many(cohort)
        finally:
            service.stop(timeout=60)
        assert len(results) == len(cohort) - 1
        assert [index for index, _ in quarantined] == [2]
        assert service.merge_summary == {
            "results": len(cohort) - 1,
            "quarantined": 1,
            "partitions": 2,
        }
        assert service_db.read_bytes() == batch_db.read_bytes()
        merged = ResultStore(service_db)
        assert merged.missing_provenance() == []
        assert (
            merged.quarantine_digest()
            == ResultStore(batch_db).quarantine_digest()
        )
        merged.close()

    def test_adversarial_corpus_shard_parity(
        self, adversarial_corpus, tmp_path
    ):
        """Batch == 1-shard == N-shard byte identity on style-pack
        adversarial text: sharding must stay invisible no matter how
        hostile the dictation surface is."""
        batch_db = _store(
            tmp_path / "batch.db",
            CorpusRunner(RecordExtractor()).run(adversarial_corpus),
        )
        for shards in (1, 2):
            service_db = tmp_path / f"shards{shards}.db"
            service, path = _serve(
                tmp_path,
                extractor=RecordExtractor(),
                config=ServiceConfig(
                    socket_path=str(
                        tmp_path / f"svc{shards}.sock"
                    ),
                    max_batch=3,
                    linger_s=0.01,
                    shards=shards,
                    store_path=str(service_db),
                ),
            )
            try:
                with ServiceClient(socket_path=path) as client:
                    results, quarantined = client.extract_many(
                        adversarial_corpus
                    )
            finally:
                service.stop(timeout=60)
            assert quarantined == []
            assert len(results) == len(adversarial_corpus)
            assert service_db.read_bytes() == batch_db.read_bytes(), (
                f"{shards}-shard store diverged from batch"
            )
            merged = ResultStore(service_db)
            assert merged.missing_provenance() == []
            merged.close()

    def test_fleet_instances_share_one_store(self, cohort, tmp_path):
        """Two service instances, one WAL store, full provenance.

        Fleet mode trades byte-ordering (arrival order interleaves)
        for shared writes, so parity here is content-digest level:
        the union of both instances' work must equal one batch run.
        """
        fleet_db = tmp_path / "fleet.db"
        first, first_path = _serve(
            tmp_path,
            extractor=RecordExtractor(),
            config=ServiceConfig(
                socket_path=str(tmp_path / "one.sock"),
                linger_s=0.01,
                shards=2,
                store_path=str(fleet_db),
                fleet=True,
            ),
        )
        second, second_path = _serve(
            tmp_path,
            extractor=RecordExtractor(),
            config=ServiceConfig(
                socket_path=str(tmp_path / "two.sock"),
                linger_s=0.01,
                shards=2,
                store_path=str(fleet_db),
                fleet=True,
            ),
        )
        half = len(cohort) // 2
        try:
            with ServiceClient(socket_path=first_path) as client:
                left, _ = client.extract_many(cohort[:half])
            with ServiceClient(socket_path=second_path) as client:
                right, _ = client.extract_many(cohort[half:])
        finally:
            first.stop(timeout=60)
            second.stop(timeout=60)
        assert len(left) + len(right) == len(cohort)

        batch_db = _store(
            tmp_path / "batch.db",
            CorpusRunner(RecordExtractor()).run(cohort),
        )
        shared = ResultStore(fleet_db)
        assert (
            shared.content_digest()
            == ResultStore(batch_db).content_digest()
        )
        assert shared.missing_provenance() == []
        shared.close()


class TestServeSubmitCli:
    """The real ``repro serve`` / ``repro submit`` subprocesses."""

    @pytest.fixture(scope="class")
    def notes_dir(self, tmp_path_factory):
        from repro.records.loader import save_records

        directory = tmp_path_factory.mktemp("notes")
        records, _ = RecordGenerator(seed=41).generate_cohort(
            CohortSpec(size=3, smoking_counts={"never": 2, None: 1})
        )
        save_records(records, directory)
        return directory

    def _spawn_serve(self, tmp_path, *extra):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src
        ready = tmp_path / "ready.json"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", str(tmp_path / "svc.sock"),
                "--ready-file", str(ready),
                *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 120
        while not ready.exists():
            if process.poll() is not None:
                raise AssertionError(
                    "serve died: " + process.stdout.read()
                )
            if time.monotonic() > deadline:
                process.kill()
                raise AssertionError("serve never became ready")
            time.sleep(0.1)
        bound = json.loads(ready.read_text())
        return process, bound["socket"], env

    def _submit(self, env, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "submit", *args],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_cli_round_trip_drain_and_provenance(
        self, notes_dir, tmp_path
    ):
        process, sock, env = self._spawn_serve(tmp_path)
        try:
            health = self._submit(
                env, "--socket", sock, "--health"
            )
            assert health.returncode == 0, health.stderr
            assert json.loads(health.stdout)["status"] == "ok"

            service_db = tmp_path / "service.db"
            submit = self._submit(
                env,
                "--socket", sock,
                "--input", str(notes_dir),
                "--db", str(service_db),
            )
            assert submit.returncode == 0, submit.stderr
            assert "3 extracted, 0 quarantined" in submit.stdout

            stats = self._submit(env, "--socket", sock, "--stats")
            assert stats.returncode == 0
            parsed = json.loads(stats.stdout)
            assert parsed["completed"] == 3
            assert parsed["queue_depth"] == 0

            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=120)
            assert process.returncode == 0, out
            assert "drained: 3 completed" in out
            assert not Path(sock).exists()
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30)

        batch_db = tmp_path / "batch.db"
        extract = subprocess.run(
            [
                sys.executable, "-m", "repro", "extract",
                "--input", str(notes_dir),
                "--db", str(batch_db),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert extract.returncode == 0, extract.stderr
        assert service_db.read_bytes() == batch_db.read_bytes()

        store = ResultStore(service_db)
        assert store.missing_provenance() == []
        store.close()
