"""End-to-end resilience properties.

* interrupt-then-resume produces a store bit-for-bit identical to an
  uninterrupted run;
* a quarantined poison yields a store identical to simply skipping
  the poison, whichever extractor stage the poison breaks;
* the hostile corpus flows through the resilient engine unharmed.
"""

import random

import pytest

from repro.extraction import RecordExtractor
from repro.runtime import (
    CorpusRunner,
    FaultPlan,
    ResilientCorpusRunner,
    RetryPolicy,
)
from repro.runtime.faults import InjectedInterrupt
from repro.storage import ResultStore
from repro.synth import CohortSpec, RecordGenerator

FAST_POLICY = RetryPolicy(max_attempts=3, backoff_base_s=0.0)


@pytest.fixture(scope="module")
def cohort():
    records, _ = RecordGenerator(seed=23).generate_cohort(
        CohortSpec(
            size=8,
            smoking_counts={
                "never": 4, "current": 2, "former": 1, None: 1,
            },
        )
    )
    return records


def _store(path, results, quarantine=()):
    store = ResultStore(path)
    store.store_many(results)
    if quarantine:
        store.save_quarantine(list(quarantine))
    store.close()
    return path


class TestInterruptResume:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_resumed_store_is_bit_identical(
        self, workers, cohort, tmp_path
    ):
        # A seeded "kill -9" at a random record, away from the very
        # first chunk so the journal has something to resume from.
        index = random.Random(97 + workers).randrange(2, len(cohort))
        journal_path = tmp_path / "run.journal"

        interrupted = ResilientCorpusRunner(
            RecordExtractor(),
            workers=workers,
            chunk_size=2,
            journal=journal_path,
            run_id="e2e",
            fault_plan=FaultPlan.parse(f"interrupt@{index}"),
            policy=FAST_POLICY,
        )
        with pytest.raises(InjectedInterrupt):
            interrupted.run(cohort)

        resumed = ResilientCorpusRunner(
            RecordExtractor(),
            workers=workers,
            chunk_size=2,
            journal=journal_path,
            run_id="e2e",
            resume=True,
            policy=FAST_POLICY,
        )
        results = resumed.run(cohort)
        assert resumed.stats()["resumed_chunks"] >= 1

        baseline = CorpusRunner(
            RecordExtractor(), chunk_size=2
        ).run(cohort)
        assert results == baseline

        a = _store(tmp_path / "resumed.db", results)
        b = _store(tmp_path / "plain.db", baseline)
        assert a.read_bytes() == b.read_bytes()


class _StagePoisonExtractor(RecordExtractor):
    """Blows up mid-pipeline for one patient.

    Stages before ``STAGE`` run for real first, so the test also
    proves partially-extracted work never leaks into the store.
    """

    STAGE = "numeric"
    POISON_ID = ""

    def extract(self, record):
        if record.patient_id != self.POISON_ID:
            return super().extract(record)
        if self.STAGE in ("terms", "categorical"):
            self.numeric.extract_record(record)
        if self.STAGE == "categorical":
            self.terms.extract_record_detailed(record)
        raise ValueError(
            f"injected {self.STAGE}-stage failure "
            f"for {record.patient_id}"
        )


class TestQuarantineEqualsSkip:
    @pytest.mark.parametrize(
        "stage", ["numeric", "terms", "categorical"]
    )
    def test_store_identical_to_skipping_poison(
        self, stage, cohort, tmp_path
    ):
        poison_id = cohort[3].patient_id
        extractor = _StagePoisonExtractor()
        extractor.STAGE = stage
        extractor.POISON_ID = poison_id

        runner = ResilientCorpusRunner(
            extractor, chunk_size=2, policy=FAST_POLICY
        )
        results = runner.run(cohort)
        assert [e.record_id for e in runner.quarantine] == [
            poison_id
        ]
        assert [e.error_type for e in runner.quarantine] == [
            "ValueError"
        ]

        skipped = [r for r in cohort if r.patient_id != poison_id]
        skip_results = CorpusRunner(
            RecordExtractor(), chunk_size=2
        ).run(skipped)

        quarantined_store = ResultStore(tmp_path / f"{stage}-q.db")
        quarantined_store.store_many(results)
        quarantined_store.save_quarantine(runner.quarantine)
        skipped_store = ResultStore(tmp_path / f"{stage}-s.db")
        skipped_store.store_many(skip_results)
        # content_digest covers every result table and excludes the
        # quarantine table, so quarantine(poison) == skip(poison).
        assert (
            quarantined_store.content_digest()
            == skipped_store.content_digest()
        )
        assert quarantined_store.quarantined() != []
        assert skipped_store.quarantined() == []


class TestHostileCorpusEndToEnd:
    def test_resilient_store_matches_plain_store(
        self, hostile_corpus, tmp_path
    ):
        resilient = ResilientCorpusRunner(
            RecordExtractor(), policy=FAST_POLICY
        )
        results = resilient.run(hostile_corpus)
        assert resilient.quarantine == []

        plain = CorpusRunner(RecordExtractor()).run(hostile_corpus)
        a = _store(tmp_path / "resilient.db", results)
        b = _store(tmp_path / "plain.db", plain)
        assert a.read_bytes() == b.read_bytes()
