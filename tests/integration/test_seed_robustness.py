"""Seed robustness: the headline results must not be seed-42 artifacts.

The benchmarks pin seed 42 for reproducibility; these tests rerun the
key experiments on different seeds and assert the *bands* hold.  Small
cohorts keep runtime reasonable.
"""

import pytest

from repro.eval import (
    numeric_experiment,
    smoking_experiment,
    table1_experiment,
)
from repro.synth import CohortSpec, RecordGenerator

SEEDS = (7, 1234)


def small_cohort(seed):
    return RecordGenerator(seed=seed).generate_cohort(
        CohortSpec(
            size=16,
            smoking_counts={
                "never": 9, "current": 4, "former": 2, None: 1,
            },
        )
    )


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_numeric_perfect_on_any_seed(self, seed):
        records, golds = small_cohort(seed)
        result = numeric_experiment(records, golds)
        precision, recall = result.overall()
        assert precision == 1.0
        assert recall == 1.0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_table1_ordering_on_any_seed(self, seed):
        records, golds = small_cohort(seed)
        table = table1_experiment(records, golds)
        pre_pmh = table["predefined_past_medical_history"]
        pre_psh = table["predefined_past_surgical_history"]
        # The ordering phenomena, not the decimals: predefined-PMH
        # recall stays high while predefined-PSH recall collapses.
        assert pre_pmh[1] >= 0.75
        assert pre_psh[1] <= pre_pmh[1]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_smoking_band_on_any_seed(self, seed):
        # The paper's protocol needs its full 45 labelled cases; at 15
        # cases folds lose whole classes.  Categorical featurization
        # does not parse, so the full cohort stays fast here.
        records, golds = RecordGenerator(seed=seed).generate_cohort(
            CohortSpec.paper()
        )
        result = smoking_experiment(records, golds, seed=seed)
        # Band, not the paper's decimal: across seeds the protocol
        # lands at 80-95% (the paper's 92.2% is one draw from this
        # distribution), always far above the 62% majority baseline.
        assert result.accuracy >= 0.75
        assert 3 <= result.max_features <= 10
