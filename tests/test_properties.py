"""Cross-cutting property-based tests over the core invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extraction import TermExtractor
from repro.linkgrammar import LinkGrammarParser
from repro.errors import ParseFailure
from repro.nlp import analyze
from repro.ontology import build_concepts, default_ontology

# ------------------------------------------------------------ ontology

ALL_CONCEPTS = build_concepts()


class TestOntologyCompleteness:
    """Every name the vocabulary ships must be findable again."""

    @pytest.mark.parametrize(
        "concept",
        ALL_CONCEPTS,
        ids=lambda c: c.preferred_name,
    )
    def test_every_name_lookupable(self, concept):
        store = default_ontology()
        for name in concept.all_names():
            matches = store.lookup(name)
            assert any(
                m.concept.cui == concept.cui for m in matches
            ), f"{name!r} does not resolve to {concept.cui}"


# ----------------------------------------------------- term extraction

@st.composite
def term_sentences(draw):
    """'Significant for X, Y, and Z.' over known disease names."""
    names = draw(
        st.lists(
            st.sampled_from(
                [
                    "diabetes", "asthma", "gout", "migraine",
                    "hypertension", "bronchitis", "arrhythmia",
                    "depression", "anemia", "psoriasis",
                ]
            ),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    if len(names) == 1:
        joined = names[0]
    else:
        joined = ", ".join(names[:-1]) + f", and {names[-1]}"
    return f"Significant for {joined}.", names


class TestTermExtractionProperties:
    @given(term_sentences())
    @settings(max_examples=30, deadline=None)
    def test_known_single_word_terms_all_found(self, case):
        sentence, names = case
        extractor = TermExtractor()
        hits = extractor.extract_terms(sentence)
        surfaces = {h.surface.lower() for h in hits}
        for name in names:
            assert name in surfaces or any(
                name in s for s in surfaces
            )

    @given(term_sentences())
    @settings(max_examples=20, deadline=None)
    def test_hit_spans_never_overlap(self, case):
        sentence, _ = case
        hits = TermExtractor().extract_terms(sentence)
        for a, b in zip(hits, hits[1:]):
            assert a.end_token <= b.start_token


# --------------------------------------------------------- link parser

@st.composite
def simple_sentences(draw):
    subject = draw(st.sampled_from(["she", "he", "the patient"]))
    verb = draw(st.sampled_from(["denies", "reports", "notes"]))
    obj = draw(
        st.sampled_from(
            ["pain", "alcohol use", "breast pain", "a mass",
             "nipple discharge"]
        )
    )
    return f"{subject} {verb} {obj} .".split()


class TestParserProperties:
    @given(simple_sentences())
    @settings(max_examples=30, deadline=None)
    def test_generated_svo_sentences_parse(self, words):
        linkages = LinkGrammarParser().parse(words)
        assert linkages

    @given(simple_sentences())
    @settings(max_examples=20, deadline=None)
    def test_every_linkage_planar_connected_exclusive(self, words):
        for linkage in LinkGrammarParser().parse(words):
            assert linkage.is_planar()
            assert linkage.is_connected()
            pairs = [(l.left, l.right) for l in linkage.links]
            assert len(pairs) == len(set(pairs))

    @given(simple_sentences())
    @settings(max_examples=15, deadline=None)
    def test_every_word_has_a_link(self, words):
        linkage = LinkGrammarParser().parse_one(words)
        linked = {
            i for l in linkage.links for i in (l.left, l.right)
        }
        # Every non-stripped word participates in the linkage.
        expected = {
            i for i, t in enumerate(linkage.token_map) if t is not None
        } | {0}
        assert linked == expected

    @given(st.lists(st.sampled_from(["zzz", "qqq", ":", "%"]),
                    min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_garbage_never_crashes(self, words):
        parser = LinkGrammarParser()
        try:
            parser.parse(words)
        except ParseFailure:
            pass  # expected for garbage


# ------------------------------------------------------------ pipeline

class TestPipelineProperties:
    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_analyze_total_on_arbitrary_text(self, text):
        document = analyze(text)
        # Tokens nest in sentences; numbers nest in tokens' span range.
        for sentence in document.sentences():
            assert sentence.start <= sentence.end
        token_count = sum(
            len(document.tokens(s)) for s in document.sentences()
        )
        assert token_count == len(document.tokens())

    @given(
        st.lists(
            st.integers(0, 400).map(str),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_all_digit_tokens_become_numbers(self, numbers):
        text = "Counts of " + ", ".join(numbers) + "."
        document = analyze(text)
        values = [n.features["value"] for n in document.numbers()]
        assert values == [float(n) for n in numbers]
