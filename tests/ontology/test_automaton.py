"""Term automaton: superset-candidate contract and scan parity.

The automaton may over-generate candidate start positions (each one
is re-probed through the unchanged lookup path) but must never miss a
position where the prefilter+probe scan finds a hit — on any ontology
subset and any text, hostile ones included.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.pipeline import default_pipeline
from repro.ontology.automaton import PERM_LIMIT, TermAutomaton
from repro.ontology.builder import build_concepts, default_ontology
from repro.ontology.store import OntologyStore

HOSTILE_TEXTS = [
    "pt c/o chest pain, denies asthma.  BP 144/90!!",
    "h/o diabetes mellitus; high blood pressure (essential)",
    "mother had breast cancer . . . no gallstones",
    "DIABETES, diabetes, DiAbEtEs and the diabetes",
    "coronary artery bypass graft x3, mammogram neg",
    "aspirin 81mg q.d.\n\nlipitor 10 mg\nno known allergies",
    "pressure blood high - permuted word salad pressure",
    "unrelated text with no medical terms whatsoever",
    "",
]


@pytest.fixture(scope="module")
def ontology():
    return default_ontology().compiled()


@pytest.fixture(scope="module")
def automaton(ontology):
    return TermAutomaton.from_ontology(ontology)


def _sentence_token_texts(text):
    document = default_pipeline().process_text(text)
    return [view.texts for view in document.sentence_views()]


def _probe_hits(extractor, texts):
    """Start positions where the legacy probe path finds a match."""
    tags = ["NN"] * len(texts)
    starts = []
    i = 0
    while i < len(texts):
        hit = extractor._match_at(texts, tags, i, None)
        if hit is not None:
            starts.append(i)
            i = hit.end_token
        else:
            i += 1
    return starts


class TestBuild:
    def test_full_vocabulary_fits(self, automaton):
        assert not automaton.degraded
        assert automaton.key_count > 0
        assert automaton.pattern_count >= automaton.key_count
        assert automaton.node_count > automaton.key_count

    def test_from_ontology_equals_explicit_keys(self, ontology):
        explicit = TermAutomaton(
            ontology.normalized_keys(),
            lemmatizer=ontology.normalizer.lemmatizer,
        )
        built = TermAutomaton.from_ontology(ontology)
        assert built.node_count == explicit.node_count
        assert built.pattern_count == explicit.pattern_count

    def test_long_key_degrades_to_probe_everything(self):
        long_key = " ".join(f"w{i}" for i in range(PERM_LIMIT + 1))
        automaton = TermAutomaton(["diabetes", long_key])
        assert automaton.degraded
        assert automaton.scan(["diabetes"]) is None

    def test_pickle_roundtrip_scans_identically(self, automaton):
        texts = ["high", "blood", "pressure", "and", "diabetes"]
        automaton.scan(texts)  # populate the piece cache
        clone = pickle.loads(pickle.dumps(automaton))
        assert clone._piece_cache == {}
        assert clone.scan(texts) == automaton.scan(texts)
        assert clone.node_count == automaton.node_count


class TestScan:
    def test_multiword_term_in_surface_order(self, automaton):
        candidates = automaton.scan(
            ["high", "blood", "pressure", "today"]
        )
        assert 0 in candidates

    def test_stopword_and_punctuation_transparent(self, automaton):
        # "(" and "the" contribute no pieces: a probe window may
        # start on them, so their positions join the candidate set.
        candidates = automaton.scan(["(", "the", "diabetes", ")"])
        assert {0, 1, 2} <= candidates

    def test_no_terms_no_candidates(self, automaton):
        assert automaton.scan(["xyzzy", "qwerty", "12345"]) == set()
        assert automaton.scan([]) == set()

    def test_candidates_cover_probe_hits_on_hostile_texts(
        self, automaton
    ):
        from repro.extraction.terms import TermExtractor

        extractor = TermExtractor(
            legacy_scan=True, use_automaton=False
        )
        for text in HOSTILE_TEXTS:
            for texts in _sentence_token_texts(text):
                candidates = automaton.scan(texts)
                hits = _probe_hits(extractor, texts)
                assert set(hits) <= candidates, (text, texts, hits)


class TestExtractorParity:
    """Automaton+view scan == legacy prefilter+probe scan, bit for bit."""

    def _extractors(self, store=None):
        from repro.extraction.terms import TermExtractor

        kwargs = {} if store is None else {"ontology": store}
        fast = TermExtractor(**kwargs)
        legacy = TermExtractor(
            legacy_scan=True, use_automaton=False, **kwargs
        )
        assert fast.automaton is not None
        return fast, legacy

    def test_hostile_texts_identical_hits(self):
        fast, legacy = self._extractors()
        for text in HOSTILE_TEXTS:
            assert fast.extract_terms(text) == (
                legacy.extract_terms(text)
            ), text

    def test_record_extraction_identical_with_provenance(self):
        from repro.synth import CohortSpec, RecordGenerator

        records, _ = RecordGenerator(seed=23).generate_cohort(
            CohortSpec(
                size=10,
                smoking_counts={
                    "never": 7, "current": 1, "former": 1, None: 1,
                },
            )
        )
        fast, legacy = self._extractors()
        for record in records:
            # TermHit equality covers surface, cui, span, and the POS
            # pattern — the full provenance payload.
            assert fast.extract_record_detailed(record) == (
                legacy.extract_record_detailed(record)
            ), record.patient_id

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_ontology_subsets_identical(self, data):
        concepts = build_concepts()
        subset = data.draw(
            st.lists(
                st.sampled_from(concepts),
                min_size=1,
                max_size=40,
                unique_by=lambda c: c.cui,
            )
        )
        words = [
            word
            for concept in subset[:10]
            for name in concept.all_names()
            for word in name.lower().split()
        ] + ["the", "no", "of", "patient", "denies", ",", "."]
        text = " ".join(
            data.draw(
                st.lists(
                    st.sampled_from(words), min_size=0, max_size=30
                )
            )
        )
        store = OntologyStore(subset)
        fast, legacy = self._extractors(store)
        assert fast.extract_terms(text) == (
            legacy.extract_terms(text)
        ), text
