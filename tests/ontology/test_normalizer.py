"""Term normalization tests (§3.2)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ontology import TermNormalizer


class TestPaperExamples:
    def test_high_blood_pressures(self):
        # The paper's worked example.
        assert TermNormalizer().normalize("high blood pressures") == \
            "blood high pressure"

    def test_case_insensitive(self):
        n = TermNormalizer()
        assert n.normalize("High Blood Pressure") == n.normalize(
            "high blood pressure"
        )

    def test_single_word_lemmatized(self):
        assert TermNormalizer().normalize("cholecystectomies") in {
            "cholecystectomy", "cholecystectomies",
        }

    def test_inflected_and_base_forms_agree(self):
        n = TermNormalizer()
        assert n.normalize("midline hernias") == n.normalize(
            "midline hernia"
        )

    def test_word_order_irrelevant(self):
        n = TermNormalizer()
        assert n.normalize("hernia midline") == n.normalize(
            "midline hernia"
        )

    def test_articles_dropped(self):
        n = TermNormalizer()
        assert n.normalize("removal of the gallbladder") == n.normalize(
            "gallbladder removal"
        )

    def test_punctuation_ignored(self):
        n = TermNormalizer()
        assert n.normalize("non-hodgkin lymphoma") == n.normalize(
            "non-hodgkin   lymphoma"
        )

    def test_empty_term(self):
        assert TermNormalizer().normalize("") == ""


class TestProperties:
    @given(st.text(alphabet="abcdefghij ", max_size=40))
    def test_idempotent(self, term):
        n = TermNormalizer()
        once = n.normalize(term)
        assert n.normalize(once) == once

    @given(
        st.lists(
            st.sampled_from(
                ["blood", "high", "pressure", "heart", "disease", "pain"]
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_permutation_invariant(self, words):
        import itertools

        n = TermNormalizer()
        keys = {
            n.normalize(" ".join(p))
            for p in itertools.permutations(words)
        }
        assert len(keys) == 1

    def test_candidates_start_with_primary(self):
        n = TermNormalizer()
        cands = n.normalize_candidates("high blood pressures")
        assert cands[0] == n.normalize("high blood pressures")
