"""Ontology store tests: lookup, subsets, synonym stripping."""

import pytest

from repro.errors import OntologyError
from repro.ontology import (
    Concept,
    OntologyStore,
    SemanticType,
    build_concepts,
    default_ontology,
)


@pytest.fixture(scope="module")
def store():
    return default_ontology()


class TestLookup:
    def test_preferred_name_hit(self, store):
        matches = store.lookup("cholecystectomy")
        assert matches
        assert matches[0].concept.preferred_name == "cholecystectomy"

    def test_synonym_hit_maps_to_concept(self, store):
        [match] = store.lookup("htn")
        assert match.concept.preferred_name == "high blood pressure"

    def test_inflected_surface_form(self, store):
        matches = store.lookup("midline hernias")
        names = {m.concept.preferred_name for m in matches}
        assert "hernia" in names

    def test_word_order_insensitive(self, store):
        assert store.lookup("pressure blood high")

    def test_miss_returns_empty(self, store):
        assert store.lookup("flying purple turnip") == []

    def test_contains(self, store):
        assert "diabetes" in store
        assert "zzzgarble" not in store

    def test_paper_pmh_examples(self, store):
        # Appendix record: "Significant for diabetes, heart disease,
        # high blood pressure, hypercholesterolemia, bronchitis,
        # arrhythmia, and depression."
        for term in [
            "diabetes", "heart disease", "high blood pressure",
            "hypercholesterolemia", "bronchitis", "arrhythmia",
            "depression", "postoperative cva", "cervical laminectomy",
        ]:
            assert store.lookup(term), term

    def test_lookup_type_filters(self, store):
        assert store.lookup_type(
            "cholecystectomy", {SemanticType.PROCEDURE}
        )
        assert not store.lookup_type(
            "cholecystectomy", {SemanticType.DISEASE}
        )

    def test_concept_by_cui(self, store):
        c = store.concepts()[0]
        assert store.concept(c.cui) is c

    def test_unknown_cui_raises(self, store):
        with pytest.raises(OntologyError):
            store.concept("C9999999")


class TestBuild:
    def test_cuis_unique_and_wellformed(self):
        concepts = build_concepts()
        cuis = [c.cui for c in concepts]
        assert len(cuis) == len(set(cuis))
        assert all(c.cui.startswith("C") for c in concepts)

    def test_vocabulary_size(self):
        assert len(build_concepts()) >= 300

    def test_duplicate_cui_rejected(self):
        c = Concept("C0000001", "thing", SemanticType.FINDING)
        with pytest.raises(OntologyError):
            OntologyStore([c, c])

    def test_malformed_cui_rejected(self):
        with pytest.raises(ValueError):
            Concept("X123", "thing", SemanticType.FINDING)

    def test_deterministic_build(self):
        a = [c.cui for c in build_concepts()]
        b = [c.cui for c in build_concepts()]
        assert a == b


class TestDegradedCopies:
    def test_subset_is_deterministic(self, store):
        a = {c.cui for c in store.subset(0.5, seed=7).concepts()}
        b = {c.cui for c in store.subset(0.5, seed=7).concepts()}
        assert a == b

    def test_subset_fraction_roughly_respected(self, store):
        kept = len(store.subset(0.7, seed=1))
        total = len(store)
        assert 0.55 * total < kept < 0.85 * total

    def test_subset_full_coverage_keeps_all(self, store):
        assert len(store.subset(1.0)) == len(store)

    def test_subset_zero_coverage_empty(self, store):
        assert len(store.subset(0.0)) == 0

    def test_subset_rejects_bad_fraction(self, store):
        with pytest.raises(ValueError):
            store.subset(1.5)

    def test_without_synonyms_drops_synonym_lookup(self, store):
        stripped = store.without_synonyms()
        assert stripped.lookup("high blood pressure")
        assert not stripped.lookup("htn")

    def test_without_synonyms_targeted(self, store):
        stripped = store.without_synonyms(for_names={"high blood pressure"})
        assert not stripped.lookup("htn")
        # Other concepts keep their synonyms.
        assert stripped.lookup("gerd")
