"""Pattern-induction baseline tests."""

import pytest

from repro.baselines import (
    InducedPattern,
    PatternInducer,
    PatternNumericBaseline,
)
from repro.baselines.pattern_induction import TrainingInstance
from repro.synth import CohortSpec, RecordGenerator


def instance(tokens, span, numbers, gold):
    return TrainingInstance(
        tokens=tuple(tokens),
        feature_span=span,
        number_indices=tuple(numbers),
        gold_index=gold,
    )


class TestInducedPattern:
    def test_apply_literal_gap(self):
        pattern = InducedPattern(gap=("of",), direction=1)
        tokens = "pulse of 84".split()
        assert pattern.apply(tokens, (0, 1), [2]) == 2

    def test_apply_wildcard_gap(self):
        pattern = InducedPattern(gap=(WILDCARD := "*",), direction=1)
        tokens = "pulse was 84".split()
        assert pattern.apply(tokens, (0, 1), [2]) == 2

    def test_apply_rejects_wrong_gap(self):
        pattern = InducedPattern(gap=("of",), direction=1)
        tokens = "pulse is 84".split()
        assert pattern.apply(tokens, (0, 1), [2]) is None

    def test_apply_target_must_be_number(self):
        pattern = InducedPattern(gap=("of",), direction=1)
        tokens = "pulse of strong".split()
        assert pattern.apply(tokens, (0, 1), []) is None

    def test_leftward_direction(self):
        pattern = InducedPattern(gap=(), direction=-1)
        tokens = "84 pulse".split()
        assert pattern.apply(tokens, (1, 2), [0]) == 0

    def test_laplacian_accuracy(self):
        pattern = InducedPattern(
            gap=("of",), direction=1, support=3, errors=1
        )
        assert pattern.laplacian_accuracy == pytest.approx(4 / 6)


class TestInducer:
    def test_learns_of_pattern(self):
        instances = [
            instance("pulse of 84".split(), (0, 1), [2], 2),
            instance("weight of 154".split(), (0, 1), [2], 2),
        ]
        patterns = PatternInducer().induce(instances)
        gaps = {(p.gap, p.direction) for p in patterns}
        assert (("of",), 1) in gaps

    def test_specific_beats_wildcard_on_ties(self):
        instances = [
            instance("pulse of 84".split(), (0, 1), [2], 2),
            instance("pulse of 90".split(), (0, 1), [2], 2),
        ]
        patterns = PatternInducer().induce(instances)
        assert patterns[0].gap == ("of",)

    def test_bad_pattern_filtered_by_accuracy(self):
        # "FEATURE * NUM" mispredicts half the time here.
        instances = [
            instance("pulse of 84 then 90".split(), (0, 1), [2, 4], 2),
            instance("pulse near 90 then 84".split(), (0, 1), [2, 4], 4),
        ]
        patterns = PatternInducer(min_accuracy=0.6).induce(instances)
        for pattern in patterns:
            assert not (
                pattern.gap == ("*",) and pattern.direction == 1
            ) or pattern.laplacian_accuracy >= 0.6

    def test_long_gaps_skipped(self):
        tokens = "pulse a b c d e 84".split()
        patterns = PatternInducer(max_gap=4).induce(
            [instance(tokens, (0, 1), [6], 6)]
        )
        assert patterns == []

    def test_empty_training(self):
        assert PatternInducer().induce([]) == []


class TestBaselineEndToEnd:
    @pytest.fixture(scope="class")
    def cohorts(self):
        spec = CohortSpec(
            size=10,
            smoking_counts={
                "never": 6, "current": 2, "former": 1, None: 1,
            },
        )
        train = RecordGenerator(seed=31).generate_cohort(spec)
        test = RecordGenerator(seed=32).generate_cohort(spec)
        return train, test

    def test_trains_and_extracts(self, cohorts):
        (train_r, train_g), (test_r, test_g) = cohorts
        baseline = PatternNumericBaseline()
        counts = baseline.train(train_r, train_g)
        assert sum(counts.values()) > 0
        out = baseline.extract_record(test_r[0])
        extracted = [v for v in out.values() if v is not None]
        assert extracted
        assert all(e.method.value == "pattern" for e in extracted)

    def test_untrained_extracts_nothing(self, cohorts):
        (_, _), (test_r, _) = cohorts
        baseline = PatternNumericBaseline()
        out = baseline.extract_record(test_r[0])
        assert all(v is None for v in out.values())

    def test_consistent_style_high_accuracy(self, cohorts):
        from repro.eval import numeric_experiment

        (train_r, train_g), (test_r, test_g) = cohorts
        baseline = PatternNumericBaseline()
        baseline.train(train_r, train_g)
        result = numeric_experiment(
            test_r, test_g, extractor=baseline
        )
        p, r = result.overall()
        assert p >= 0.9 and r >= 0.8
