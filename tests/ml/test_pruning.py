"""Reduced-error pruning tests."""

import pytest

from repro.errors import TrainingError
from repro.ml import Dataset, ID3Classifier
from repro.ml.pruning import prune_tree, train_pruned


def noisy_dataset():
    """Signal feature plus noise features that invite overfitting."""
    pairs = []
    for i in range(12):
        pairs.append(((f"quit", f"noise{i}"), "former"))
        pairs.append(((f"never", f"noise{i + 50}"), "never"))
    # Conflicting labels on the noise features.
    pairs.append((("noise0",), "never"))
    pairs.append((("noise50",), "former"))
    return Dataset.from_pairs(pairs)


class TestPruning:
    def test_pruned_tree_no_larger(self):
        data = noisy_dataset()
        validation = Dataset.from_pairs(
            [(["quit"], "former"), (["never"], "never")] * 3
        )
        unpruned = ID3Classifier().fit(data)
        size_before = len(unpruned.features_used())
        pruned = prune_tree(ID3Classifier().fit(data), validation)
        assert len(pruned.features_used()) <= size_before

    def test_validation_accuracy_never_drops(self):
        data = noisy_dataset()
        validation = Dataset.from_pairs(
            [(["quit", "x"], "former"), (["never", "y"], "never"),
             (["quit"], "former"), (["never"], "never")]
        )
        unpruned = ID3Classifier().fit(data)
        before = sum(
            unpruned.predict(i) == i.label for i in validation
        )
        pruned = prune_tree(ID3Classifier().fit(data), validation)
        after = sum(
            pruned.predict(i) == i.label for i in validation
        )
        assert after >= before

    def test_pure_tree_untouched(self):
        data = Dataset.from_pairs(
            [(["a"], "x"), (["a"], "x"), ([], "y"), ([], "y")]
        )
        validation = Dataset.from_pairs([(["a"], "x"), ([], "y")])
        pruned = prune_tree(ID3Classifier().fit(data), validation)
        assert pruned.predict(["a"]) == "x"
        assert pruned.predict([]) == "y"

    def test_train_pruned_convenience(self):
        data = noisy_dataset()
        validation = Dataset.from_pairs(
            [(["quit"], "former"), (["never"], "never")]
        )
        classifier = train_pruned(data, validation)
        assert classifier.predict(["quit"]) == "former"

    def test_untrained_rejected(self):
        with pytest.raises(TrainingError):
            prune_tree(ID3Classifier(), Dataset.from_pairs([([], "x")]))

    def test_empty_validation_rejected(self):
        data = Dataset.from_pairs([(["a"], "x"), ([], "y")])
        with pytest.raises(TrainingError):
            prune_tree(ID3Classifier().fit(data), Dataset())

    def test_degenerate_validation_collapses_to_majority(self):
        # Validation says everything is "never": the tree collapses.
        data = noisy_dataset()
        validation = Dataset.from_pairs([([], "never")] * 5)
        pruned = prune_tree(ID3Classifier().fit(data), validation)
        assert pruned.predict(["quit"]) == "never"
