"""Dataset behaviour: splits, folds, shuffling."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml import Dataset, Instance


@pytest.fixture
def smoking_like():
    return Dataset.from_pairs(
        [
            (["quit", "smoke", "year"], "former"),
            (["current", "smoker"], "current"),
            (["never", "smoke"], "never"),
            (["none"], "never"),
            (["smoke", "pack", "day"], "current"),
            (["stop", "smoke"], "former"),
        ]
    )


class TestBasics:
    def test_labels_in_first_appearance_order(self, smoking_like):
        assert smoking_like.labels() == ["former", "current", "never"]

    def test_features_union(self, smoking_like):
        assert "quit" in smoking_like.features()
        assert "none" in smoking_like.features()

    def test_label_counts(self, smoking_like):
        assert smoking_like.label_counts() == {
            "former": 2, "current": 2, "never": 2,
        }

    def test_majority_tie_breaks_earliest(self, smoking_like):
        assert smoking_like.majority_label() == "former"

    def test_majority_of_empty_raises(self):
        with pytest.raises(ValueError):
            Dataset().majority_label()

    def test_split(self, smoking_like):
        yes, no = smoking_like.split("smoke")
        assert len(yes) == 4 and len(no) == 2
        assert all(i.has("smoke") for i in yes)
        assert not any(i.has("smoke") for i in no)


class TestFolds:
    def test_folds_partition(self, smoking_like):
        folds = smoking_like.folds(3)
        assert len(folds) == 3
        test_sizes = sum(len(test) for _, test in folds)
        assert test_sizes == len(smoking_like)
        for train, test in folds:
            assert len(train) + len(test) == len(smoking_like)

    def test_test_folds_disjoint(self, smoking_like):
        folds = smoking_like.folds(3)
        seen = []
        for _, test in folds:
            seen.extend(id(i) for i in test)
        assert len(seen) == len(set(seen))

    def test_too_many_folds_rejected(self, smoking_like):
        with pytest.raises(ValueError):
            smoking_like.folds(10)

    def test_one_fold_rejected(self, smoking_like):
        with pytest.raises(ValueError):
            smoking_like.folds(1)

    @given(st.integers(2, 5), st.integers(10, 40))
    def test_fold_property_partition(self, k, n):
        data = Dataset.from_pairs(
            [([f"f{i}"], f"l{i % 3}") for i in range(n)]
        )
        folds = data.folds(k)
        total = sum(len(test) for _, test in folds)
        assert total == n


class TestShuffle:
    def test_shuffled_preserves_multiset(self, smoking_like):
        shuffled = smoking_like.shuffled(random.Random(42))
        assert sorted(i.label for i in shuffled) == sorted(
            i.label for i in smoking_like
        )

    def test_shuffled_is_new_object(self, smoking_like):
        shuffled = smoking_like.shuffled(random.Random(42))
        assert shuffled is not smoking_like

    def test_shuffle_deterministic_per_seed(self, smoking_like):
        a = smoking_like.shuffled(random.Random(7))
        b = smoking_like.shuffled(random.Random(7))
        assert [i.label for i in a] == [i.label for i in b]


class TestInstance:
    def test_has(self):
        inst = Instance(frozenset({"a"}), "x")
        assert inst.has("a") and not inst.has("b")
