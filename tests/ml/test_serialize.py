"""Tree serialization tests."""

import json

import pytest

from repro.errors import TrainingError
from repro.ml import Dataset, ID3Classifier
from repro.ml.serialize import (
    load_tree,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)


@pytest.fixture
def trained():
    data = Dataset.from_pairs(
        [
            (["quit", "year"], "former"),
            (["quit"], "former"),
            (["current"], "current"),
            (["smoker", "current"], "current"),
            (["never"], "never"),
            ([], "never"),
        ]
    )
    return ID3Classifier().fit(data), data


class TestRoundTrip:
    def test_predictions_preserved(self, trained):
        classifier, data = trained
        restored = tree_from_dict(tree_to_dict(classifier))
        for instance in data:
            assert restored.predict(instance) == classifier.predict(
                instance
            )

    def test_features_used_preserved(self, trained):
        classifier, _ = trained
        restored = tree_from_dict(tree_to_dict(classifier))
        assert restored.features_used() == classifier.features_used()

    def test_file_roundtrip(self, trained, tmp_path):
        classifier, data = trained
        path = tmp_path / "tree.json"
        save_tree(classifier, path)
        restored = load_tree(path)
        assert restored.predict(["quit"]) == classifier.predict(["quit"])

    def test_file_is_plain_json(self, trained, tmp_path):
        classifier, _ = trained
        path = tmp_path / "tree.json"
        save_tree(classifier, path)
        parsed = json.loads(path.read_text())
        assert parsed["format"] == 1
        assert "root" in parsed

    def test_hyperparameters_preserved(self):
        data = Dataset.from_pairs([(["a"], "x"), ([], "y")])
        classifier = ID3Classifier(max_depth=3).fit(data)
        restored = tree_from_dict(tree_to_dict(classifier))
        assert restored.max_depth == 3


class TestErrors:
    def test_untrained_rejected(self):
        with pytest.raises(TrainingError):
            tree_to_dict(ID3Classifier())

    def test_bad_version_rejected(self):
        with pytest.raises(TrainingError):
            tree_from_dict({"format": 99, "root": {"leaf": "x"}})

    def test_malformed_node_rejected(self):
        with pytest.raises(TrainingError):
            tree_from_dict(
                {"format": 1, "root": {"feature": "f", "present":
                                       {"leaf": "x"}}}
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TrainingError):
            load_tree(tmp_path / "absent.json")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TrainingError):
            load_tree(path)
