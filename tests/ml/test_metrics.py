"""Metric tests: confusion, paper extraction formulas."""

import pytest

from repro.ml import (
    ConfusionMatrix,
    ExtractionCounts,
    confusion,
    micro_extraction,
    score_extraction,
)


class TestConfusion:
    def test_accuracy(self):
        m = confusion(["a", "a", "b"], ["a", "b", "b"])
        assert m.accuracy() == pytest.approx(2 / 3)

    def test_precision_recall_per_label(self):
        m = confusion(
            ["a", "a", "b", "b", "b"], ["a", "b", "b", "b", "a"]
        )
        assert m.precision("a") == pytest.approx(1 / 2)
        assert m.recall("a") == pytest.approx(1 / 2)
        assert m.precision("b") == pytest.approx(2 / 3)
        assert m.recall("b") == pytest.approx(2 / 3)

    def test_micro_equals_accuracy(self):
        m = confusion(["a", "b", "b"], ["a", "a", "b"])
        assert m.micro_precision_recall() == m.accuracy()

    def test_unseen_label_zero(self):
        m = confusion(["a"], ["a"])
        assert m.precision("zzz") == 0.0
        assert m.recall("zzz") == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion(["a"], ["a", "b"])

    def test_macro_averages(self):
        m = confusion(["a", "b"], ["a", "b"])
        assert m.macro_precision() == 1.0
        assert m.macro_recall() == 1.0

    def test_empty_matrix(self):
        m = ConfusionMatrix()
        assert m.accuracy() == 0.0
        assert m.labels() == []


class TestExtractionCounts:
    def test_paper_formulas(self):
        c = ExtractionCounts(etrue=3, etotal=4, tinst=5)
        assert c.precision() == pytest.approx(3 / 4)
        assert c.recall() == pytest.approx(3 / 5)

    def test_nothing_expected_nothing_extracted_is_perfect(self):
        c = ExtractionCounts(0, 0, 0)
        assert c.precision() == 1.0
        assert c.recall() == 1.0

    def test_missed_everything(self):
        c = ExtractionCounts(0, 0, 3)
        assert c.precision() == 0.0
        assert c.recall() == 0.0

    def test_addition(self):
        total = ExtractionCounts(1, 2, 3) + ExtractionCounts(2, 2, 2)
        assert (total.etrue, total.etotal, total.tinst) == (3, 4, 5)


class TestMicroExtraction:
    def test_micro_pools_counts(self):
        # §5: P = ΣETrue/ΣETotal, R = ΣETrue/ΣTInst.
        subjects = [
            ExtractionCounts(2, 2, 3),
            ExtractionCounts(1, 3, 1),
        ]
        p, r = micro_extraction(subjects)
        assert p == pytest.approx(3 / 5)
        assert r == pytest.approx(3 / 4)

    def test_micro_differs_from_macro(self):
        subjects = [
            ExtractionCounts(0, 1, 1),
            ExtractionCounts(9, 9, 9),
        ]
        p, _ = micro_extraction(subjects)
        macro = sum(s.precision() for s in subjects) / 2
        assert p == pytest.approx(0.9)
        assert macro == pytest.approx(0.5)


class TestScoreExtraction:
    def test_exact_match(self):
        c = score_extraction(["a", "b"], ["b", "a"])
        assert (c.etrue, c.etotal, c.tinst) == (2, 2, 2)

    def test_false_positive(self):
        c = score_extraction(["a", "x"], ["a"])
        assert (c.etrue, c.etotal, c.tinst) == (1, 2, 1)

    def test_false_negative(self):
        c = score_extraction(["a"], ["a", "b"])
        assert (c.etrue, c.etotal, c.tinst) == (1, 1, 2)

    def test_duplicates_count_once_each(self):
        c = score_extraction(["a", "a"], ["a"])
        assert c.etrue == 1
        assert c.etotal == 2
