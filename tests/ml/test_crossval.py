"""Cross-validation protocol tests."""

import pytest

from repro.ml import Dataset, cross_validate


@pytest.fixture
def separable():
    pairs = []
    for i in range(15):
        pairs.append(((f"quit", f"noise{i}"), "former"))
        pairs.append(((f"current", f"noise{i+100}"), "current"))
        pairs.append(((f"never", f"noise{i+200}"), "never"))
    return Dataset.from_pairs(pairs)


class TestCrossValidate:
    def test_fold_count(self, separable):
        result = cross_validate(separable, k=5, repetitions=2, seed=1)
        assert len(result.fold_accuracies) == 10
        assert len(result.feature_counts) == 10

    def test_separable_data_high_accuracy(self, separable):
        result = cross_validate(separable, k=5, repetitions=3, seed=1)
        assert result.accuracy > 0.95

    def test_total_predictions(self, separable):
        result = cross_validate(separable, k=5, repetitions=2, seed=1)
        assert result.confusion.total() == 2 * len(separable)

    def test_deterministic_given_seed(self, separable):
        a = cross_validate(separable, k=5, repetitions=2, seed=9)
        b = cross_validate(separable, k=5, repetitions=2, seed=9)
        assert a.accuracy == b.accuracy
        assert a.feature_counts == b.feature_counts

    def test_seed_changes_shuffle(self, separable):
        a = cross_validate(separable, k=5, repetitions=1, seed=1)
        b = cross_validate(separable, k=5, repetitions=1, seed=2)
        # Same data, same protocol — accuracies may match, but the
        # shuffles should generally differ in fold accuracy patterns.
        assert (
            a.fold_accuracies != b.fold_accuracies
            or a.feature_counts == b.feature_counts
        )

    def test_summary_contains_percentage(self, separable):
        result = cross_validate(separable, k=5, repetitions=1, seed=1)
        assert "%" in result.summary()

    def test_feature_range_properties(self, separable):
        result = cross_validate(separable, k=5, repetitions=1, seed=1)
        assert 1 <= result.min_features <= result.max_features
