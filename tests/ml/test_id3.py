"""ID3 decision tree tests: entropy, gain, tree behaviour."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TrainingError
from repro.ml import (
    Dataset,
    ID3Classifier,
    entropy,
    information_gain,
)


def make(pairs):
    return Dataset.from_pairs(pairs)


class TestEntropy:
    def test_pure_dataset_zero(self):
        assert entropy(make([([], "a"), ([], "a")])) == 0.0

    def test_balanced_binary_one_bit(self):
        assert entropy(make([([], "a"), ([], "b")])) == pytest.approx(1.0)

    def test_empty_dataset_zero(self):
        assert entropy(Dataset()) == 0.0

    def test_uniform_four_labels_two_bits(self):
        data = make([([], l) for l in "abcd"])
        assert entropy(data) == pytest.approx(2.0)

    @given(st.integers(1, 20), st.integers(0, 20))
    def test_entropy_bounds(self, a, b):
        data = make([([], "x")] * a + [([], "y")] * b)
        h = entropy(data)
        assert 0.0 <= h <= 1.0 + 1e-12


class TestInformationGain:
    def test_perfect_feature_gains_full_entropy(self):
        data = make([(["f"], "a"), (["f"], "a"), ([], "b"), ([], "b")])
        assert information_gain(data, "f") == pytest.approx(1.0)

    def test_irrelevant_feature_zero_gain(self):
        data = make([(["f"], "a"), ([], "a"), (["f"], "b"), ([], "b")])
        assert information_gain(data, "f") == pytest.approx(0.0)

    def test_gain_never_negative(self):
        data = make(
            [(["f"], "a"), ([], "a"), (["f"], "b"), ([], "b"), (["f"], "a")]
        )
        assert information_gain(data, "f") >= -1e-12


class TestTraining:
    def test_perfectly_separable(self):
        data = make(
            [
                (["quit"], "former"),
                (["quit", "year"], "former"),
                (["current"], "current"),
                (["current", "smoker"], "current"),
                (["never"], "never"),
                (["never", "smoke"], "never"),
            ]
        )
        clf = ID3Classifier().fit(data)
        for inst in data:
            assert clf.predict(inst) == inst.label

    def test_features_used_is_small(self):
        data = make(
            [
                (["quit", "noise1"], "former"),
                (["quit", "noise2"], "former"),
                (["current", "noise3"], "current"),
                (["current", "noise4"], "current"),
                (["never", "noise5"], "never"),
                (["never", "noise6"], "never"),
            ]
        )
        clf = ID3Classifier().fit(data)
        # Three discriminating features suffice; noise is ignored.
        assert len(clf.features_used()) <= 3

    def test_empty_dataset_raises(self):
        with pytest.raises(TrainingError):
            ID3Classifier().fit(Dataset())

    def test_single_class_predicts_it_always(self):
        clf = ID3Classifier().fit(make([(["a"], "only"), (["b"], "only")]))
        assert clf.predict(["zzz"]) == "only"
        assert clf.depth() == 0

    def test_unpredictable_data_falls_to_majority(self):
        # Identical features, conflicting labels.
        data = make([(["f"], "a"), (["f"], "a"), (["f"], "b")])
        clf = ID3Classifier().fit(data)
        assert clf.predict(["f"]) == "a"

    def test_max_depth_respected(self):
        data = make(
            [
                (["a"], "w"),
                (["b"], "x"),
                (["c"], "y"),
                (["d"], "z"),
            ]
        )
        clf = ID3Classifier(max_depth=1).fit(data)
        assert clf.depth() <= 1

    def test_predict_before_fit_raises(self):
        with pytest.raises(TrainingError):
            ID3Classifier().predict(["x"])

    def test_deterministic_tree(self):
        data = make(
            [(["a", "b"], "x"), (["a"], "y"), (["b"], "x"), ([], "y")]
        )
        t1 = ID3Classifier().fit(data).describe()
        t2 = ID3Classifier().fit(data).describe()
        assert t1 == t2

    def test_describe_mentions_split_feature(self):
        data = make([(["quit"], "former"), ([], "never")])
        assert "quit" in ID3Classifier().fit(data).describe()

    def test_predict_dataset(self):
        data = make([(["quit"], "former"), ([], "never")])
        clf = ID3Classifier().fit(data)
        assert clf.predict_dataset(data) == ["former", "never"]

    @given(
        st.lists(
            st.tuples(
                st.sets(st.sampled_from("abcdef"), max_size=4),
                st.sampled_from(["x", "y", "z"]),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_training_accuracy_at_least_majority(self, pairs):
        data = make(pairs)
        clf = ID3Classifier().fit(data)
        correct = sum(
            clf.predict(inst) == inst.label for inst in data
        )
        majority = max(data.label_counts().values())
        assert correct >= majority
