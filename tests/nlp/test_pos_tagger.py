"""POS tagger tests: lexicon, morphology and context layers."""

from repro.nlp import analyze
from repro.nlp.pos_tagger import tag_sentence


def tags_of(text):
    doc = analyze(text)
    return [(doc.span_text(t), t.features["pos"]) for t in doc.tokens()]


class TestLexiconLayer:
    def test_figure1_sentence_tags(self):
        got = dict(tags_of(
            "Blood pressure is 144/90, pulse of 84, temperature of 98.3, "
            "and weight of 154 pounds."
        ))
        assert got["pressure"] == "NN"
        assert got["is"] == "VBZ"
        assert got["144/90"] == "CD"
        assert got["of"] == "IN"
        assert got["and"] == "CC"
        assert got["pounds"] == "NNS"

    def test_determiner_and_pronoun(self):
        got = dict(tags_of("She has a mass."))
        assert got["She"] == "PRP"
        assert got["a"] == "DT"
        assert got["mass"] == "NN"

    def test_number_words_are_cd(self):
        got = dict(tags_of("five years ago"))
        assert got["five"] == "CD"
        assert got["years"] == "NNS"
        assert got["ago"] == "RB"

    def test_clinical_abbreviations(self):
        got = dict(tags_of("PMH significant for COPD and HTN"))
        assert got["PMH"] == "NN"
        assert got["COPD"] == "NN"
        assert got["HTN"] == "NN"

    def test_medical_suffix_morphology(self):
        # None of these need to be in the lexicon.
        got = dict(tags_of(
            "status post cholecystectomy with cholangitis and nephrosis"
        ))
        assert got["cholecystectomy"] == "NN"
        assert got["cholangitis"] == "NN"
        assert got["nephrosis"] == "NN"


class TestMorphologyLayer:
    def test_vbz_of_known_verb(self):
        assert dict(tags_of("She denies pain."))["denies"] == "VBZ"

    def test_vbd_of_known_verb(self):
        assert dict(tags_of("She reported nausea."))["reported"] == "VBD"

    def test_plural_noun(self):
        assert dict(tags_of("two biopsies"))["biopsies"] == "NNS"

    def test_gerund(self):
        assert dict(tags_of("She is smoking."))["smoking"] == "VBG"

    def test_unknown_capitalized_word_is_nnp(self):
        assert dict(tags_of("prescribed Lipitor"))["Lipitor"] == "NNP"

    def test_adverb_suffix(self):
        assert dict(tags_of("examined bilaterally"))["bilaterally"] == "RB"


class TestContextLayer:
    def test_participle_after_have(self):
        got = dict(tags_of("She has never smoked."))
        assert got["smoked"] == "VBN"

    def test_past_after_pronoun_stays_vbd(self):
        got = dict(tags_of("She quit smoking five years ago."))
        assert got["quit"] == "VBD"

    def test_her_possessive_before_noun(self):
        got = dict(tags_of("Her breast history is negative."))
        assert got["Her"] == "PRP$"

    def test_screening_before_noun_is_adjectival(self):
        got = dict(tags_of("She underwent a screening mammogram."))
        assert got["screening"] == "JJ"
        assert got["mammogram"] == "NN"
        assert got["underwent"] == "VBD"

    def test_noun_after_determiner_not_verb(self):
        got = dict(tags_of("The report was reviewed."))
        assert got["report"] == "NN"


class TestTermPatternSupport:
    """Tags that the JJ/NN term patterns of §3.2 rely on."""

    def test_past_medical_history_example(self):
        got = dict(tags_of(
            "Significant for a postoperative CVA after undergoing a "
            "cholecystectomy and a midline hernia closure"
        ))
        assert got["postoperative"] == "JJ"
        assert got["CVA"] == "NN"
        assert got["cholecystectomy"] == "NN"
        assert got["midline"] == "JJ"
        assert got["hernia"] == "NN"
        assert got["closure"] == "NN"

    def test_high_blood_pressure(self):
        got = dict(tags_of("history of high blood pressure"))
        assert got["high"] == "JJ"
        assert got["blood"] == "NN"
        assert got["pressure"] == "NN"

    def test_tag_sentence_function(self):
        assert tag_sentence(["heart", "disease"]) == ["NN", "NN"]
