"""Tokenizer unit tests: clinical token shapes and span integrity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.document import Document, TokenKind
from repro.nlp.tokenizer import Tokenizer, tokenize


@pytest.fixture
def tokenizer():
    return Tokenizer()


class TestBasicTokenization:
    def test_simple_sentence(self):
        assert tokenize("She quit smoking.") == [
            "She", "quit", "smoking", ".",
        ]

    def test_blood_pressure_is_single_ratio_token(self, tokenizer):
        toks = tokenizer.tokenize_text("Blood pressure is 144/90.")
        ratio = [t for t in toks if t.kind is TokenKind.RATIO]
        assert [t.text for t in ratio] == ["144/90"]

    def test_decimal_ratio(self, tokenizer):
        toks = tokenizer.tokenize_text("98.6/37.0")
        assert [t.text for t in toks] == ["98.6/37.0"]
        assert toks[0].kind is TokenKind.RATIO

    def test_decimal_number_not_split(self, tokenizer):
        toks = tokenizer.tokenize_text("temperature of 98.3,")
        texts = [t.text for t in toks]
        assert "98.3" in texts
        kinds = {t.text: t.kind for t in toks}
        assert kinds["98.3"] is TokenKind.NUMBER

    def test_thousands_separator(self, tokenizer):
        toks = tokenizer.tokenize_text("1,250 cells")
        assert toks[0].text == "1,250"
        assert toks[0].kind is TokenKind.NUMBER

    def test_hyphenated_age_phrase(self):
        assert tokenize("a 50-year-old woman") == [
            "a", "50-year-old", "woman",
        ]

    def test_internal_period_abbreviation(self):
        assert tokenize("Take aspirin p.r.n. daily") == [
            "Take", "aspirin", "p.r.n.", "daily",
        ]

    def test_apostrophe_word(self):
        assert tokenize("the patient's chart") == [
            "the", "patient's", "chart",
        ]

    def test_punctuation_kinds(self, tokenizer):
        toks = tokenizer.tokenize_text("Vitals: BP, pulse; done.")
        kinds = {t.text: t.kind for t in toks}
        assert kinds[":"] is TokenKind.PUNCT
        assert kinds[","] is TokenKind.PUNCT
        assert kinds[";"] is TokenKind.PUNCT
        assert kinds["."] is TokenKind.PUNCT

    def test_symbol_tokens(self, tokenizer):
        toks = tokenizer.tokenize_text("O2 sat 98%")
        assert "%" in [t.text for t in toks]

    def test_empty_text(self, tokenizer):
        assert tokenizer.tokenize_text("") == []

    def test_whitespace_only(self, tokenizer):
        assert tokenizer.tokenize_text("  \n\t ") == []


class TestSpanIntegrity:
    def test_spans_match_source(self, tokenizer):
        text = "Blood pressure is 144/90, pulse of 84."
        for tok in tokenizer.tokenize_text(text):
            assert text[tok.start:tok.end] == tok.text

    def test_spans_are_ordered_and_disjoint(self, tokenizer):
        text = "Ms. 2 is a 50-year-old woman with BP 142/78."
        toks = tokenizer.tokenize_text(text)
        for a, b in zip(toks, toks[1:]):
            assert a.end <= b.start

    def test_every_non_space_char_covered(self, tokenizer):
        text = "Menarche at age 10, gravida 4, para 3."
        toks = tokenizer.tokenize_text(text)
        covered = set()
        for tok in toks:
            covered.update(range(tok.start, tok.end))
        expected = {i for i, c in enumerate(text) if not c.isspace()}
        assert covered == expected

    @given(st.text(max_size=300))
    def test_tokenizer_total_on_arbitrary_text(self, text):
        toks = Tokenizer().tokenize_text(text)
        covered = set()
        for tok in toks:
            assert text[tok.start:tok.end] == tok.text
            covered.update(range(tok.start, tok.end))
        expected = {i for i, c in enumerate(text) if not c.isspace()}
        assert covered == expected

    @given(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd", "Po", "Zs")
            ),
            max_size=200,
        )
    )
    def test_roundtrip_preserves_order(self, text):
        toks = Tokenizer().tokenize_text(text)
        starts = [t.start for t in toks]
        assert starts == sorted(starts)


class TestDocumentAnnotation:
    def test_annotate_adds_token_annotations(self):
        doc = Document("She is a smoker.")
        Tokenizer().annotate(doc)
        assert [doc.span_text(t) for t in doc.tokens()] == [
            "She", "is", "a", "smoker", ".",
        ]

    def test_token_kind_feature_present(self):
        doc = Document("BP 142/78")
        Tokenizer().annotate(doc)
        kinds = [t.features["kind"] for t in doc.tokens()]
        assert TokenKind.RATIO in kinds
