"""JAPE-style pattern engine tests."""

import pytest

from repro.nlp import analyze
from repro.nlp.jape import (
    Constraint,
    JapeEngine,
    Rule,
    duration_rules,
    measurement_rules,
)


def annotate(text, rules):
    document = analyze(text)
    added = JapeEngine(rules).annotate(document)
    return document, added


class TestConstraint:
    def test_text_match(self):
        document = analyze("pulse of 84")
        token = document.tokens()[1]
        assert Constraint(text="of").matches(document, token)
        assert not Constraint(text="is").matches(document, token)

    def test_text_in(self):
        document = analyze("five years")
        token = document.tokens()[1]
        assert Constraint(
            text_in=frozenset({"years", "months"})
        ).matches(document, token)

    def test_pos_prefix(self):
        document = analyze("She smokes.")
        token = document.tokens()[1]
        assert Constraint(pos="VB").matches(document, token)
        assert not Constraint(pos="NN").matches(document, token)

    def test_annotation_covering(self):
        document = analyze("pulse of 84")
        number_token = document.tokens()[2]
        assert Constraint(annotation="Number").matches(
            document, number_token
        )

    def test_predicate(self):
        document = analyze("pulse")
        token = document.tokens()[0]
        constraint = Constraint(
            predicate=lambda d, t: d.span_text(t).startswith("p")
        )
        assert constraint.matches(document, token)


class TestEngine:
    def test_simple_sequence(self):
        rule = Rule(
            name="r",
            label="Hit",
            pattern=(Constraint(text="of"), Constraint(annotation="Number")),
        )
        document, added = annotate("pulse of 84 and weight of 154",
                                   [rule])
        assert [document.span_text(a) for a in added] == [
            "of 84", "of 154",
        ]

    def test_optional_element(self):
        rule = Rule(
            name="r",
            label="Hit",
            pattern=(
                Constraint(annotation="Number"),
                Constraint(text="more", optional=True),
                Constraint(text_in=frozenset({"years"})),
            ),
        )
        _, added1 = annotate("5 years", [rule])
        _, added2 = annotate("5 more years", [rule])
        assert len(added1) == 1 and len(added2) == 1

    def test_repeatable_element(self):
        rule = Rule(
            name="r",
            label="Hit",
            pattern=(
                Constraint(pos="JJ", repeatable=True),
                Constraint(pos="NN"),
            ),
        )
        document, added = annotate("severe chronic pain", [rule])
        assert [document.span_text(a) for a in added] == [
            "severe chronic pain",
        ]

    def test_priority_wins_over_length(self):
        long_rule = Rule(
            name="long", label="Long", priority=0,
            pattern=(Constraint(annotation="Number"),
                     Constraint(text_in=frozenset({"years"})),
                     Constraint(text="ago")),
        )
        short_rule = Rule(
            name="short", label="Short", priority=9,
            pattern=(Constraint(annotation="Number"),
                     Constraint(text_in=frozenset({"years"}))),
        )
        _, added = annotate("5 years ago", [long_rule, short_rule])
        assert [a.type for a in added] == ["Short"]

    def test_matches_never_overlap(self):
        rule = Rule(
            name="pair", label="Pair",
            pattern=(Constraint(), Constraint()),  # any two tokens
        )
        document, added = annotate("a b c d e", [rule])
        spans = [(a.start, a.end) for a in added]
        for s1, s2 in zip(spans, spans[1:]):
            assert s1[1] <= s2[0]


class TestDurationRules:
    def test_years_ago(self):
        document, added = annotate(
            "She quit smoking five years ago.", duration_rules()
        )
        [duration] = added
        assert duration.type == "Duration"
        assert duration.features["value"] == 5.0
        assert duration.features["unit"] == "year"
        assert duration.features["ago"] is True

    def test_plain_duration(self):
        document, added = annotate(
            "Smoking history, 15 years.", duration_rules()
        )
        [duration] = added
        assert duration.features["value"] == 15.0
        assert duration.features["ago"] is False

    def test_no_duration_without_unit(self):
        _, added = annotate("Pulse of 84.", duration_rules())
        assert added == []


class TestMeasurementRules:
    def test_weight_measurement(self):
        document, added = annotate(
            "Weight of 154 pounds.", measurement_rules()
        )
        [m] = added
        assert m.features == {"value": 154.0, "unit": "pounds"}

    def test_metric_units(self):
        _, added = annotate("a 2 cm lesion", measurement_rules())
        assert added[0].features["unit"] == "cm"
