"""Number annotator tests: digits, ratios, words, compounds."""

from hypothesis import given
from hypothesis import strategies as st

from repro.nlp import analyze
from repro.nlp.numbers import parse_number_word, parse_word_sequence


def numbers_of(text):
    doc = analyze(text)
    return [(doc.span_text(n), n.features) for n in doc.numbers()]


class TestDigitNumbers:
    def test_integer(self):
        [(text, feats)] = numbers_of("pulse of 84")
        assert text == "84"
        assert feats["value"] == 84.0
        assert feats["form"] == "digits"

    def test_decimal(self):
        [(text, feats)] = numbers_of("temperature of 98.3")
        assert feats["value"] == 98.3

    def test_thousands(self):
        [(_, feats)] = numbers_of("platelets 1,250")
        assert feats["value"] == 1250.0


class TestRatioNumbers:
    def test_blood_pressure_reading(self):
        [(text, feats)] = numbers_of("Blood pressure is 144/90")
        assert text == "144/90"
        assert feats["values"] == (144.0, 90.0)
        assert feats["value"] == 144.0
        assert feats["form"] == "ratio"


class TestWordNumbers:
    def test_single_word(self):
        [(text, feats)] = numbers_of("menarche at age seventeen")
        assert text == "seventeen"
        assert feats["value"] == 17.0
        assert feats["form"] == "words"

    def test_hyphenated(self):
        assert parse_number_word("twenty-five") == 25.0

    def test_multiword_sequence(self):
        [(text, feats)] = numbers_of("weight of one hundred fifty four")
        assert feats["value"] == 154.0

    def test_scale_words(self):
        assert parse_word_sequence(["two", "thousand"]) == 2000.0
        assert parse_word_sequence(["one", "hundred", "five"]) == 105.0

    def test_non_number_rejected(self):
        assert parse_number_word("pulse") is None
        assert parse_word_sequence(["no", "numbers"]) is None

    def test_empty_sequence(self):
        assert parse_word_sequence([]) is None

    @given(st.integers(0, 19))
    def test_units_roundtrip(self, n):
        words = [
            "zero", "one", "two", "three", "four", "five", "six",
            "seven", "eight", "nine", "ten", "eleven", "twelve",
            "thirteen", "fourteen", "fifteen", "sixteen", "seventeen",
            "eighteen", "nineteen",
        ]
        assert parse_number_word(words[n]) == float(n)

    @given(st.integers(2, 9), st.integers(1, 9))
    def test_hyphenated_compounds_roundtrip(self, tens, unit):
        tens_words = {
            2: "twenty", 3: "thirty", 4: "forty", 5: "fifty",
            6: "sixty", 7: "seventy", 8: "eighty", 9: "ninety",
        }
        units = [
            "zero", "one", "two", "three", "four", "five", "six",
            "seven", "eight", "nine",
        ]
        word = f"{tens_words[tens]}-{units[unit]}"
        assert parse_number_word(word) == float(tens * 10 + unit)


class TestFigureOneSentence:
    def test_all_four_numbers_found(self):
        found = numbers_of(
            "Blood pressure is 144/90, pulse of 84, temperature of "
            "98.3, and weight of 154 pounds."
        )
        values = [f.get("values", f["value"]) for _, f in found]
        assert values == [(144.0, 90.0), 84.0, 98.3, 154.0]

    def test_gyn_history_numbers(self):
        found = numbers_of(
            "Menarche at age 10, gravida 4, para 3, last menstrual "
            "period about a year ago."
        )
        assert [f["value"] for _, f in found] == [10.0, 4.0, 3.0]
