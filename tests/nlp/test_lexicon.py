"""Sanity suite over the embedded POS lexicon data."""

import pytest

from repro.nlp.lexicon import (
    ADJECTIVES,
    IRREGULAR_VERB_FORMS,
    NOUN_BASES,
    NUMBER_WORDS,
    VERB_BASES,
    WORD_TAGS,
)

_VALID_TAGS = {
    "NN", "NNS", "NNP", "JJ", "JJR", "JJS", "VB", "VBD", "VBZ", "VBG",
    "VBN", "VBP", "RB", "RBR", "IN", "DT", "CC", "CD", "PRP", "PRP$",
    "MD", "TO", "EX", "WDT", "WP", "WP$", "WRB", "UH", "POS",
}


class TestLexiconIntegrity:
    def test_all_tags_valid(self):
        bad = {
            (w, t) for w, t in WORD_TAGS.items() if t not in _VALID_TAGS
        }
        assert not bad, sorted(bad)[:5]

    def test_all_words_lowercase(self):
        assert all(w == w.lower() for w in WORD_TAGS)

    def test_no_empty_words(self):
        assert all(w.strip() for w in WORD_TAGS)

    def test_size_is_substantial(self):
        assert len(WORD_TAGS) > 700

    def test_irregular_forms_have_valid_tags(self):
        for surface, (tag, lemma) in IRREGULAR_VERB_FORMS.items():
            assert tag in _VALID_TAGS, surface
            assert lemma

    def test_class_sets_are_subsets_of_table(self):
        for word in VERB_BASES:
            assert word in WORD_TAGS
        for word in NUMBER_WORDS:
            assert WORD_TAGS[word] == "CD"

    def test_core_clinical_vocabulary_present(self):
        for word in [
            "pressure", "pulse", "temperature", "weight", "menarche",
            "gravida", "para", "smoker", "biopsy", "mammogram",
        ]:
            assert word in WORD_TAGS, word

    def test_function_words_present(self):
        assert WORD_TAGS["the"] == "DT"
        assert WORD_TAGS["of"] == "IN"
        assert WORD_TAGS["and"] == "CC"
        assert WORD_TAGS["she"] == "PRP"

    def test_priority_function_words_not_shadowed(self):
        # Words listed in several classes keep their function-word tag.
        assert WORD_TAGS["to"] == "TO"
        assert WORD_TAGS["there"] in {"EX", "RB"}

    def test_adjective_noun_overlap_is_deliberate(self):
        # A word in both sets must resolve to exactly one lexicon tag.
        overlap = ADJECTIVES & NOUN_BASES
        for word in overlap:
            assert WORD_TAGS[word] in {"JJ", "NN"}
