"""Document / annotation model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.document import (
    Annotation,
    AnnotationSet,
    Document,
    align_tokens,
)


class TestAnnotation:
    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            Annotation(id=1, type="Token", start=5, end=3)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Annotation(id=1, type="Token", start=-1, end=3)

    def test_text_extraction(self):
        ann = Annotation(id=1, type="Token", start=4, end=9)
        assert ann.text("The pulse is 84") == "pulse"

    def test_overlaps(self):
        a = Annotation(id=1, type="X", start=0, end=5)
        b = Annotation(id=2, type="X", start=4, end=8)
        c = Annotation(id=3, type="X", start=5, end=8)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_contains(self):
        outer = Annotation(id=1, type="Sentence", start=0, end=20)
        inner = Annotation(id=2, type="Token", start=5, end=9)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_ordering_by_span(self):
        a = Annotation(id=9, type="X", start=0, end=2)
        b = Annotation(id=1, type="X", start=3, end=4)
        assert a < b


class TestAnnotationSet:
    def test_add_and_retrieve_by_type(self):
        s = AnnotationSet()
        s.add("Token", 0, 3)
        s.add("Number", 4, 6)
        assert len(s.of_type("Token")) == 1
        assert len(s.of_type("Number")) == 1
        assert s.types() == {"Token", "Number"}

    def test_within(self):
        s = AnnotationSet()
        s.add("Token", 0, 3)
        s.add("Token", 4, 8)
        s.add("Token", 10, 12)
        inside = s.within("Token", 0, 9)
        assert [a.span for a in inside] == [(0, 3), (4, 8)]

    def test_within_excludes_partial_overlap(self):
        s = AnnotationSet()
        s.add("Token", 0, 5)
        assert s.within("Token", 2, 10) == []

    def test_covering(self):
        s = AnnotationSet()
        s.add("Sentence", 0, 20)
        s.add("Sentence", 20, 40)
        assert [a.span for a in s.covering("Sentence", 25)] == [(20, 40)]

    def test_first_within_none_when_empty(self):
        s = AnnotationSet()
        assert s.first_within("Token", 0, 100) is None

    def test_remove(self):
        s = AnnotationSet()
        ann = s.add("Token", 0, 3)
        s.remove(ann)
        assert s.of_type("Token") == []

    def test_remove_missing_raises(self):
        s = AnnotationSet()
        ann = s.add("Token", 0, 3)
        s.remove(ann)
        with pytest.raises(ValueError):
            s.remove(ann)

    def test_out_of_order_adds_are_sorted(self):
        s = AnnotationSet()
        s.add("Token", 10, 12)
        s.add("Token", 0, 3)
        s.add("Token", 4, 8)
        assert [a.span for a in s.of_type("Token")] == [
            (0, 3), (4, 8), (10, 12),
        ]

    def test_iteration_is_document_order(self):
        s = AnnotationSet()
        s.add("B", 5, 6)
        s.add("A", 0, 2)
        assert [a.span for a in s] == [(0, 2), (5, 6)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
                lambda p: (min(p), max(p) + 1)
            ),
            max_size=40,
        )
    )
    def test_of_type_always_sorted(self, spans):
        s = AnnotationSet()
        for start, end in spans:
            s.add("T", start, end)
        got = [(a.start, a.end) for a in s.of_type("T")]
        assert got == sorted(got)


class TestDocumentHelpers:
    def test_token_texts_within_sentence(self):
        doc = Document("One two. Three four.")
        doc.annotations.add("Sentence", 0, 8)
        doc.annotations.add("Sentence", 9, 20)
        for span in [(0, 3), (4, 7), (7, 8), (9, 14), (15, 19), (19, 20)]:
            doc.annotations.add("Token", *span)
        first = doc.sentences()[0]
        assert doc.token_texts(first) == ["One", "two", "."]

    def test_align_tokens_groups_by_span(self):
        doc = Document("ab cd ef")
        t1 = doc.annotations.add("Token", 0, 2)
        t2 = doc.annotations.add("Token", 3, 5)
        t3 = doc.annotations.add("Token", 6, 8)
        groups = align_tokens([t1, t2, t3], [(0, 5), (6, 8)])
        assert [[a.span for a in g] for g in groups] == [
            [(0, 2), (3, 5)],
            [(6, 8)],
        ]

    def test_align_tokens_drops_outside_spans(self):
        doc = Document("ab cd ef")
        t1 = doc.annotations.add("Token", 0, 2)
        t2 = doc.annotations.add("Token", 3, 5)
        groups = align_tokens([t1, t2], [(3, 5)])
        assert [[a.span for a in g] for g in groups] == [[(3, 5)]]
