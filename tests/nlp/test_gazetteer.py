"""Gazetteer annotator tests."""

import pytest

from repro.nlp import analyze
from repro.nlp.gazetteer import Gazetteer
from repro.nlp.jape import Constraint, JapeEngine, Rule
from repro.ontology import SemanticType


class TestBasicMatching:
    def test_single_word(self):
        gazetteer = Gazetteer.from_lists({"disease": ["diabetes"]})
        document = analyze("She has diabetes.")
        [hit] = gazetteer.annotate(document)
        assert document.span_text(hit) == "diabetes"
        assert hit.features["majorType"] == "disease"

    def test_multiword_longest_wins(self):
        gazetteer = Gazetteer.from_lists(
            {"disease": ["blood pressure", "high blood pressure"]}
        )
        document = analyze("History of high blood pressure.")
        [hit] = gazetteer.annotate(document)
        assert document.span_text(hit) == "high blood pressure"

    def test_case_insensitive(self):
        gazetteer = Gazetteer.from_lists({"drug": ["aspirin"]})
        document = analyze("ASPIRIN daily.")
        assert gazetteer.annotate(document)

    def test_non_overlapping(self):
        gazetteer = Gazetteer.from_lists(
            {"x": ["heart disease", "disease"]}
        )
        document = analyze("heart disease")
        hits = gazetteer.annotate(document)
        assert len(hits) == 1

    def test_empty_phrase_rejected(self):
        with pytest.raises(ValueError):
            Gazetteer().add("  ", "x")

    def test_size(self):
        gazetteer = Gazetteer.from_lists({"a": ["x", "y"], "b": ["z"]})
        assert len(gazetteer) == 3


class TestOntologyGazetteer:
    def test_lookup_carries_cui(self):
        gazetteer = Gazetteer.from_ontology(
            semantic_types={SemanticType.PROCEDURE}
        )
        document = analyze("Status post cholecystectomy.")
        hits = gazetteer.annotate(document)
        assert any(
            h.features["preferred"] == "cholecystectomy" for h in hits
        )
        assert all(h.features["cui"].startswith("C") for h in hits)

    def test_semantic_type_filtering(self):
        gazetteer = Gazetteer.from_ontology(
            semantic_types={SemanticType.DRUG}
        )
        document = analyze("Aspirin for her diabetes.")
        hits = gazetteer.annotate(document)
        names = {h.features["preferred"] for h in hits}
        assert "aspirin" in names
        assert "diabetes" not in names

    def test_synonym_matches_to_preferred(self):
        gazetteer = Gazetteer.from_ontology(
            semantic_types={SemanticType.DISEASE}
        )
        document = analyze("Known HTN for years.")
        hits = gazetteer.annotate(document)
        assert any(
            h.features["preferred"] == "high blood pressure"
            for h in hits
        )


class TestJapeIntegration:
    def test_rule_over_lookup_annotations(self):
        # GATE's idiom: gazetteer feeds JAPE.  "DISEASE for NUM years"
        # becomes a DiseaseDuration annotation.
        gazetteer = Gazetteer.from_ontology(
            semantic_types={SemanticType.DISEASE}
        )
        rule = Rule(
            name="disease-duration",
            label="DiseaseDuration",
            pattern=(
                Constraint(annotation="Lookup", repeatable=True),
                Constraint(text="for"),
                Constraint(annotation="Number"),
                Constraint(text_in=frozenset({"years", "months"})),
            ),
        )
        document = analyze("Known hypertension for 12 years.")
        gazetteer.annotate(document)
        added = JapeEngine([rule]).annotate(document)
        assert len(added) == 1
        assert document.span_text(added[0]) == \
            "hypertension for 12 years"
