"""Sentence splitter tests over clinical dictation shapes."""

from repro.nlp.sentence_splitter import SentenceSplitter, split_sentences
from repro.nlp.document import Document
from repro.nlp.tokenizer import Tokenizer


class TestTerminalPunctuation:
    def test_simple_periods(self):
        sents = split_sentences("She is a smoker. She quit last year.")
        assert sents == ["She is a smoker.", "She quit last year."]

    def test_question_and_exclamation(self):
        sents = split_sentences("Any pain? None reported!")
        assert sents == ["Any pain?", "None reported!"]

    def test_trailing_text_without_period(self):
        sents = split_sentences("Alcohol use, occasional")
        assert sents == ["Alcohol use, occasional"]

    def test_single_token(self):
        assert split_sentences("None") == ["None"]

    def test_empty_text(self):
        assert split_sentences("") == []


class TestAbbreviations:
    def test_title_abbreviation_not_a_break(self):
        sents = split_sentences("Ms. 2 is a 50-year-old woman.")
        assert len(sents) == 1

    def test_dosing_abbreviation_not_a_break(self):
        sents = split_sentences("Aspirin p.o. daily was continued.")
        assert len(sents) == 1

    def test_unit_abbreviation_mid_sentence(self):
        sents = split_sentences("weight of 154 lbs. and stable vitals")
        assert len(sents) == 1

    def test_abbreviation_then_capital_breaks(self):
        # Dictated notes end sentences on unit abbreviations.
        sents = split_sentences("Weight of 211 lbs. HEENT is normal.")
        assert len(sents) == 2

    def test_decimal_not_a_break(self):
        sents = split_sentences("Temperature of 98.3 was recorded.")
        assert len(sents) == 1


class TestNewlineFragments:
    def test_newline_splits_fragments(self):
        text = "Vitals: Blood pressure is 142/78\nHEENT: PERRLA"
        assert len(split_sentences(text)) == 2

    def test_newline_disabled(self):
        text = "first line\nsecond line"
        doc = Document(text)
        Tokenizer().annotate(doc)
        SentenceSplitter(split_on_newline=False).annotate(doc)
        assert len(doc.sentences()) == 1

    def test_abbreviation_before_newline_still_breaks(self):
        text = "Weight 154 lbs.\nPulse of 96."
        assert len(split_sentences(text)) == 2


class TestCoverage:
    def test_every_token_in_exactly_one_sentence(self):
        text = (
            "Ms. 2 is a 50-year-old woman. Blood pressure is 144/90, "
            "pulse of 84.\nSocial History: Smoking history, 15 years."
        )
        doc = Document(text)
        Tokenizer().annotate(doc)
        SentenceSplitter().annotate(doc)
        token_count = 0
        for sent in doc.sentences():
            token_count += len(doc.tokens(sent))
        assert token_count == len(doc.tokens())

    def test_sentences_are_disjoint_and_ordered(self):
        text = "One here. Two there. Three everywhere."
        doc = Document(text)
        Tokenizer().annotate(doc)
        SentenceSplitter().annotate(doc)
        sents = doc.sentences()
        assert len(sents) == 3
        for a, b in zip(sents, sents[1:]):
            assert a.end <= b.start
