"""Fused scanner vs staged pipeline: annotation-for-annotation parity.

The fused scanner exists purely for speed — one traversal instead of
four — so its contract is byte-identical output: same annotation
types, ids, spans, and features as the staged
tokenizer → splitter → tagger → number pipeline, on any text.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.document import Document
from repro.nlp.pipeline import default_pipeline
from repro.synth import CohortSpec, RecordGenerator
from repro.synth.packs import STYLE_PACKS

ADVERSARIAL = [
    "",
    " ",
    "x",
    "BP 144/90, pulse of 84. Temp 98.3 F.",
    "Meds: aspirin 81 mg q.d.; weighs 154 lbs. now",
    "no history of diabetes\nor hypertension\n\nquit smoking",
    "she is a sixty seven year old patient",
    "...  !!  ??",
    "1,250 units vs 3/4 ratio",
    "Dr. Smith saw the pt. at 9 a.m. on admission",
]


def _dump(document):
    return [
        (a.type, a.id, a.start, a.end, dict(a.features))
        for a in sorted(
            document.annotations.all(),
            key=lambda a: (a.type, a.id),
        )
    ]


def _process(text, fused):
    return _dump(default_pipeline(fused=fused).process_text(text))


@pytest.mark.parametrize("text", ADVERSARIAL)
def test_adversarial_texts_identical(text):
    assert _process(text, fused=True) == _process(text, fused=False)


def test_cohort_sections_identical():
    records, _ = RecordGenerator(seed=29).generate_cohort(
        CohortSpec(
            size=12,
            smoking_counts={
                "never": 9, "current": 1, "former": 1, None: 1,
            },
        )
    )
    for record in records:
        for section in record.sections:
            text = record.section_text(section.name)
            assert _process(text, fused=True) == _process(
                text, fused=False
            ), section.name


def test_style_pack_samples_identical():
    for pack in STYLE_PACKS:
        generator = RecordGenerator(style=pack.style, seed=31)
        record, _ = generator.generate("P-0001")
        for section in record.sections:
            text = record.section_text(section.name)
            assert _process(text, fused=True) == _process(
                text, fused=False
            ), (pack.name, section.name)


@settings(max_examples=150, deadline=None)
@given(
    text=st.text(
        alphabet=(
            "abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
            " .,;:/-()\n'\""
        ),
        max_size=120,
    )
)
def test_random_texts_identical(text):
    assert _process(text, fused=True) == _process(text, fused=False)


def test_sentence_views_align_with_annotations():
    text = "blood pressure is 144/90. pulse of 84.\nweighs 154 lbs."
    document = default_pipeline().process_text(text)
    views = document.sentence_views()
    assert [v.sentence.id for v in views] == [
        s.id for s in document.sentences()
    ]
    assert sum(len(v.tokens) for v in views) == len(document.tokens())
    for view in views:
        assert view.texts == [
            document.span_text(t) for t in view.tokens
        ]
        assert view.lowers == [t.lower() for t in view.texts]
        for i, token in enumerate(view.tokens):
            assert view.token_index_by_start[token.start] == i
    # Cached: the second call returns the same view objects.
    assert document.sentence_views() is views


def test_default_pipeline_is_fused():
    from repro.nlp.scanner import FusedScanner

    components = default_pipeline().components
    assert len(components) == 1
    assert isinstance(components[0], FusedScanner)
    assert len(default_pipeline(fused=False).components) == 4
