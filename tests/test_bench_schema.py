"""Committed benchmark artifacts: schema and sanity regression tests.

``BENCH_parse.json`` once shipped a speedup of 238,597,814x — a ratio
against a microsecond denominator that nobody caught because nothing
validated the committed payloads.  These tests pin the schema of the
benchmark artifacts the CI jobs gate on: ratio fields are
float-or-null (``guarded_ratio`` semantics), lane keys are present,
and timings are plausible numbers rather than garbage.
"""

import json
import math
from pathlib import Path

import pytest

from repro.runtime.metrics import guarded_ratio

ROOT = Path(__file__).resolve().parent.parent

# A speedup beyond this is a measurement artifact, not a result.
SPEEDUP_CEILING = 1000.0


def _load(name):
    path = ROOT / name
    if not path.exists():
        pytest.skip(f"{name} not generated in this checkout")
    return json.loads(path.read_text())


def _assert_ratio(value, field):
    """guarded_ratio output: finite positive float, or null."""
    if value is None:
        return
    assert isinstance(value, float), field
    assert math.isfinite(value), field
    assert 0.0 < value < SPEEDUP_CEILING, (field, value)


def _assert_seconds(lane, key, field):
    value = lane[key]
    assert isinstance(value, (int, float)), field
    assert 0.0 <= value < 3600.0, (field, value)


class TestGuardedRatio:
    def test_normal_ratio(self):
        assert guarded_ratio(3.0, 1.5) == 2.0

    def test_noise_floor_returns_none(self):
        # The 238,597,814x case: denominator is timer noise.
        assert guarded_ratio(2.4, 1e-8, floor=1e-4) is None
        assert guarded_ratio(2.4, 0.0) is None

    def test_floor_boundary(self):
        assert guarded_ratio(1.0, 1e-4, floor=1e-4) == pytest.approx(
            1e4
        )
        assert guarded_ratio(1.0, 0.99e-4, floor=1e-4) is None


class TestBenchParseSchema:
    LANES = ("cold", "bitset", "warm_first", "warm", "combined")

    def test_lanes_and_fields(self):
        payload = _load("BENCH_parse.json")
        assert payload["bench"] == "bench_parse"
        assert payload["corpus_size"] > 0
        for lane in self.LANES:
            stats = payload[lane]
            for key in ("extract_seconds", "parse_seconds"):
                _assert_seconds(stats, key, f"{lane}.{key}")
            assert stats["sentences_parsed"] >= 0
            assert 0.0 <= stats["persistent_parse_hit_rate"] <= 1.0

    def test_speedup_is_guarded(self):
        payload = _load("BENCH_parse.json")
        _assert_ratio(
            payload["parse_speedup_combined_vs_cold"],
            "parse_speedup_combined_vs_cold",
        )

    def test_gate_invariants_hold_in_committed_payload(self):
        payload = _load("BENCH_parse.json")
        assert payload["warm"]["persistent_parse_hit_rate"] >= 0.9
        assert (
            payload["combined"]["parse_seconds"]
            <= 0.5 * payload["cold"]["parse_seconds"]
        )


class TestBenchPipelineSchema:
    SERIAL_LANES = ("staged", "fused", "fused_profiled")

    def test_lanes_and_fields(self):
        payload = _load("BENCH_pipeline.json")
        assert payload["bench"] == "bench_pipeline"
        assert payload["corpus_size"] > 0
        for lane in self.SERIAL_LANES:
            stats = payload[lane]
            for key in (
                "cold_seconds", "warm_seconds", "extract_seconds",
            ):
                _assert_seconds(stats, key, f"{lane}.{key}")
        _assert_seconds(
            payload["fused_parallel"],
            "total_seconds",
            "fused_parallel.total_seconds",
        )

    def test_speedups_are_guarded(self):
        payload = _load("BENCH_pipeline.json")
        for field in (
            "warm_speedup_fused_vs_staged",
            "cold_speedup_fused_vs_staged",
        ):
            _assert_ratio(payload[field], field)

    def test_gate_invariants_hold_in_committed_payload(self):
        payload = _load("BENCH_pipeline.json")
        staged, fused = payload["staged"], payload["fused"]
        assert fused["warm_seconds"] <= 0.7 * staged["warm_seconds"]
        profiled = payload["fused_profiled"]
        extract = profiled["extract_seconds"]
        assert abs(payload["stage_seconds_sum"] - extract) <= (
            0.2 * extract
        )
        # Only the profiled lane carries stage counters.
        assert profiled["stages"]["seconds"]
        assert not fused["stages"].get("seconds")
