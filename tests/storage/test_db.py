"""Result store tests."""

import pytest

from repro.errors import StorageError
from repro.extraction.numeric import Method, NumericExtraction
from repro.extraction.pipeline import ExtractionResult
from repro.storage import ResultStore


@pytest.fixture
def result():
    return ExtractionResult(
        patient_id="7",
        numeric={
            "pulse": NumericExtraction(
                "pulse", 84.0, Method.LINKAGE, "pulse of 84"
            ),
            "blood_pressure": NumericExtraction(
                "blood_pressure", (144.0, 90.0), Method.PATTERN,
                "bp: 144/90",
            ),
            "weight": None,
        },
        terms={
            "other_past_medical_history": ["gout", "migraine"],
        },
        categorical={"smoking": "former", "shape": None},
    )


@pytest.fixture
def store(result):
    s = ResultStore()
    s.save(result)
    return s


class TestSaveLoad:
    def test_patient_registered(self, store):
        assert store.patients() == ["7"]

    def test_scalar_numeric_roundtrip(self, store):
        assert store.numeric_value("7", "pulse") == 84.0

    def test_ratio_numeric_roundtrip(self, store):
        assert store.numeric_value("7", "blood_pressure") == (
            144.0, 90.0,
        )

    def test_missing_numeric_is_none(self, store):
        assert store.numeric_value("7", "weight") is None

    def test_terms_preserve_order(self, store):
        assert store.terms("7", "other_past_medical_history") == [
            "gout", "migraine",
        ]

    def test_categorical_roundtrip(self, store):
        assert store.categorical_value("7", "smoking") == "former"
        assert store.categorical_value("7", "shape") is None

    def test_resave_replaces(self, store, result):
        result.categorical["smoking"] = "never"
        result.terms["other_past_medical_history"] = ["gout"]
        store.save(result)
        assert store.categorical_value("7", "smoking") == "never"
        assert store.terms("7", "other_past_medical_history") == ["gout"]

    def test_empty_patient_id_rejected(self):
        with pytest.raises(StorageError):
            ResultStore().save(ExtractionResult(patient_id=""))

    def test_file_backed_store(self, tmp_path, result):
        path = tmp_path / "results.db"
        ResultStore(path).save(result)
        reopened = ResultStore(path)
        assert reopened.numeric_value("7", "pulse") == 84.0


class TestStoreMany:
    def _result(self, pid, pulse):
        return ExtractionResult(
            patient_id=pid,
            numeric={
                "pulse": NumericExtraction(
                    "pulse", pulse, Method.PATTERN, f"pulse {pulse}"
                ),
            },
            terms={"other_past_medical_history": ["gout"]},
            categorical={"smoking": "never"},
        )

    def test_batch_insert(self):
        store = ResultStore()
        results = [self._result(str(i), 60.0 + i) for i in range(5)]
        assert store.store_many(results) == 5
        assert store.patients() == [str(i) for i in range(5)]
        assert store.numeric_value("3", "pulse") == 63.0

    def test_empty_batch(self):
        assert ResultStore().store_many([]) == 0

    def test_batch_replaces_existing(self, store):
        assert store.store_many([self._result("7", 99.0)]) == 1
        assert store.numeric_value("7", "pulse") == 99.0
        assert store.terms("7", "other_past_medical_history") == ["gout"]
        assert store.patients() == ["7"]

    def test_invalid_id_rejects_whole_batch(self):
        store = ResultStore()
        batch = [self._result("1", 60.0),
                 ExtractionResult(patient_id="")]
        with pytest.raises(StorageError):
            store.store_many(batch)
        assert store.patients() == []


class TestAnalytics:
    def test_label_distribution(self, store, result):
        for pid, label in [("8", "never"), ("9", "never")]:
            store.save(
                ExtractionResult(
                    patient_id=pid, categorical={"smoking": label}
                )
            )
        assert store.label_distribution("smoking") == {
            "former": 1, "never": 2,
        }

    def test_numeric_summary(self, store):
        summary = store.numeric_summary("pulse")
        assert summary == {
            "min": 84.0, "mean": 84.0, "max": 84.0, "count": 1,
        }

    def test_numeric_summary_empty(self, store):
        assert store.numeric_summary("temperature") is None

    def test_term_frequencies(self, store):
        freqs = store.term_frequencies("other_past_medical_history")
        assert freqs == {"gout": 1, "migraine": 1}

    def test_query_select_only(self, store):
        rows = store.query("SELECT COUNT(*) FROM patients")
        assert rows == [(1,)]
        with pytest.raises(StorageError):
            store.query("DELETE FROM patients")


class TestQuarantineTable:
    @pytest.fixture
    def entry(self):
        from repro.runtime import QuarantineEntry

        return QuarantineEntry(
            record_id="p-9",
            record_index=9,
            error_type="InjectedFailure",
            message="injected failure at record 9",
            traceback_digest="ab" * 8,
            trace_span='{"kind": "quarantine", "name": "p-9"}',
            attempts=3,
        )

    def test_save_and_load_roundtrip(self, entry):
        store = ResultStore()
        store.save_quarantine([entry], run_id="r1")
        rows = store.quarantined()
        assert len(rows) == 1
        assert rows[0]["run_id"] == "r1"
        assert rows[0]["record_id"] == "p-9"
        assert rows[0]["error_type"] == "InjectedFailure"
        assert rows[0]["attempts"] == 3

    def test_filter_by_run_id(self, entry):
        store = ResultStore()
        store.save_quarantine([entry], run_id="r1")
        store.save_quarantine([entry.to_dict()], run_id="r2")
        assert len(store.quarantined()) == 2
        assert len(store.quarantined(run_id="r2")) == 1

    def test_replace_on_same_run_and_record(self, entry):
        store = ResultStore()
        store.save_quarantine([entry], run_id="r1")
        store.save_quarantine([entry], run_id="r1")
        assert len(store.quarantined()) == 1

    def test_dict_missing_field_is_storage_error(self):
        store = ResultStore()
        with pytest.raises(StorageError):
            store.save_quarantine([{"record_id": "p-9"}])

    def test_schema_matches_pinned_columns(self):
        # CI gates on this: any drift of the on-disk quarantine
        # schema must be an explicit change to QUARANTINE_COLUMNS.
        from repro.storage import QUARANTINE_COLUMNS

        store = ResultStore()
        assert store.quarantine_schema() == list(QUARANTINE_COLUMNS)

    def test_content_digest_ignores_quarantine(self, result, entry):
        a = ResultStore()
        a.save(result)
        b = ResultStore()
        b.save(result)
        b.save_quarantine([entry], run_id="r1")
        assert a.content_digest() == b.content_digest()


class TestWriteAheadLog:
    def test_wal_mode_on_file_stores(self, tmp_path, result):
        store = ResultStore(tmp_path / "results.db")
        connection = store._connection
        mode = connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        sync = connection.execute("PRAGMA synchronous").fetchone()[0]
        assert sync == 1  # NORMAL
        store.save(result)
        store.close()
        # Checkpointed on close: data lives in the main file, no WAL
        # sidecar left behind for consumers to miss.
        assert not (tmp_path / "results.db-wal").exists()
        reopened = ResultStore(tmp_path / "results.db")
        assert reopened.patients() == ["7"]

    def test_close_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "twice.db")
        store.close()
        store.close()

    def test_context_manager_closes(self, tmp_path, result):
        with ResultStore(tmp_path / "ctx.db") as store:
            store.save(result)
        assert not (tmp_path / "ctx.db-wal").exists()

    def test_batch_insert_is_one_transaction(self, tmp_path, result):
        store = ResultStore(tmp_path / "batch.db")
        statements: list[str] = []
        store._connection.set_trace_callback(statements.append)
        results = [
            ExtractionResult(
                patient_id=str(i),
                numeric=dict(result.numeric),
                terms=dict(result.terms),
                categorical=dict(result.categorical),
            )
            for i in range(1, 26)
        ]
        store.store_many(results)
        store._connection.set_trace_callback(None)
        commits = [
            s for s in statements if s.strip().upper() == "COMMIT"
        ]
        assert len(commits) == 1  # 25 records, one commit
