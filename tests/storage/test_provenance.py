"""Provenance table: every stored value joins to a decision record."""

import pytest

from repro.extraction import RecordExtractor
from repro.extraction.numeric import Method, NumericExtraction
from repro.extraction.pipeline import ExtractionResult, Provenance
from repro.runtime import CorpusRunner
from repro.storage import ResultStore
from repro.synth import CohortSpec, RecordGenerator


@pytest.fixture
def result():
    return ExtractionResult(
        patient_id="7",
        numeric={
            "pulse": NumericExtraction(
                "pulse", 84.0, Method.LINKAGE, "pulse of 84",
                "graph-distance=0.5",
            ),
            "weight": None,
        },
        terms={"other_past_medical_history": ["gout"]},
        categorical={"smoking": "former"},
        provenance=[
            Provenance(
                "pulse", "numeric", "84", "linkage",
                "graph-distance=0.5",
            ),
            Provenance(
                "other_past_medical_history", "term", "gout",
                "pos-pattern", "pattern:NN surface:gout", 0,
            ),
            Provenance(
                "smoking", "categorical", "former", "id3",
                "quit=present",
            ),
        ],
    )


@pytest.fixture
def store(result):
    s = ResultStore()
    s.save(result)
    return s


class TestRoundtrip:
    def test_rows_persisted_in_order(self, store):
        rows = store.provenance("7")
        assert [row["kind"] for row in rows] == [
            "categorical", "numeric", "term",
        ]
        pulse = store.provenance("7", attribute="pulse")
        assert pulse == [
            {
                "kind": "numeric",
                "attribute": "pulse",
                "position": 0,
                "value": "84",
                "method": "linkage",
                "detail": "graph-distance=0.5",
            }
        ]

    def test_resave_replaces_rows(self, store, result):
        trimmed = ExtractionResult(
            patient_id="7",
            numeric=result.numeric,
            terms=result.terms,
            categorical=result.categorical,
            provenance=result.provenance[:1],
        )
        store.save(trimmed)
        assert len(store.provenance("7")) == 1

    def test_method_counts(self, store):
        assert store.method_counts() == {
            "id3": 1, "linkage": 1, "pos-pattern": 1,
        }
        assert store.method_counts(kind="numeric") == {"linkage": 1}


class TestCoverageGate:
    def test_complete_provenance_reports_nothing_missing(self, store):
        assert store.missing_provenance() == []

    def test_orphan_value_detected(self, store):
        with store._connection:
            store._connection.execute(
                "DELETE FROM provenance WHERE attribute = 'pulse'"
            )
        missing = store.missing_provenance()
        assert ("numeric", "7", "pulse") in missing

    def test_real_extraction_is_fully_covered(self):
        records, golds = RecordGenerator(seed=3).generate_cohort(
            CohortSpec(
                size=4,
                smoking_counts={"never": 2, "current": 2},
            )
        )
        extractor = RecordExtractor()
        extractor.train_categorical(records, golds)
        results = CorpusRunner(extractor).run(records)
        store = ResultStore()
        store.store_many(results)
        assert store.missing_provenance() == []
        counts = store.method_counts()
        assert sum(counts.values()) > 0
