"""PARSE — making parse time disappear across process restarts.

BENCH_scaling.json shows parsing dominating cold extraction: the
link grammar recurrence re-derives the same handful of sentence
shapes in every fresh process.  This bench isolates that cost on the
200-record consistent cohort in four lanes, all producing
bit-for-bit identical extraction output:

* **cold** — dict-keyed match tables, no persistent cache: the
  pre-PR parser;
* **bitset** — packed-bitset match tables and gate tests in the
  counting/extraction recurrences (default on);
* **warm** — the second of two back-to-back runs sharing a
  persistent sidecar (``<artifact>.parsecache``): every sentence
  shape is served from disk, zero parses;
* **combined** — bitset + warm sidecar, the shipping configuration.

Gates (mirrored in CI's bench-smoke job from ``BENCH_parse.json``):
the warm lane's persistent hit rate must be >= 0.9, and the combined
lane's in-parser time must be <= 0.5x the cold lane's.
"""

import json
import time
from pathlib import Path

from conftest import print_table

from repro.extraction import NumericExtractor, RecordExtractor
from repro.linkgrammar.parser import LinkGrammarParser
from repro.runtime import CorpusRunner, ExtractionCaches
from repro.runtime.metrics import guarded_ratio
from repro.runtime.parsecache import PersistentParseCache
from repro.synth import CohortSpec, RecordGenerator

CORPUS_SIZE = 200
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_parse.json"


def _cohort(size: int):
    return RecordGenerator(seed=13).generate_cohort(
        CohortSpec(
            size=size,
            smoking_counts={
                "never": size - 3, "current": 1, "former": 1, None: 1,
            },
        )
    )


def _stack(bitset: bool, persistent=None) -> RecordExtractor:
    """An extraction stack with the parser fast paths dialed in."""
    caches = ExtractionCaches()
    if persistent is not None:
        caches.linkages.attach_persistent(persistent)
    numeric = NumericExtractor(
        parser=LinkGrammarParser(bitset=bitset),
        document_cache=caches.documents,
        linkage_cache=caches.linkages,
    )
    return RecordExtractor(numeric=numeric, caches=caches)


def _lane(records, bitset: bool, persistent=None):
    """One serial corpus run; returns (results, lane stats)."""
    runner = CorpusRunner(
        _stack(bitset, persistent), parse_cache=persistent
    )
    started = time.perf_counter()
    results = runner.run(records)
    elapsed = time.perf_counter() - started
    stats = runner.stats()
    parser = stats["engine"].get("parser", {})
    return results, {
        "bitset": bitset,
        "persistent": persistent is not None,
        "extract_seconds": elapsed,
        "parse_seconds": parser.get("parse_seconds", 0.0),
        "sentences_parsed": parser.get("sentences", 0),
        "match_bitset_hits": stats["match_bitset_hits"],
        "persistent_parse_hits": stats["persistent_parse_hits"],
        "persistent_parse_misses": stats["persistent_parse_misses"],
        "persistent_parse_hit_rate": stats[
            "persistent_parse_hit_rate"
        ],
    }


def test_parse_lanes(benchmark, tmp_path):
    records, _ = _cohort(CORPUS_SIZE)
    sidecar = tmp_path / "grammar.parsecache"
    signature = LinkGrammarParser().dictionary.signature()

    def run():
        cold_results, cold = _lane(records, bitset=False)
        bitset_results, bitset = _lane(records, bitset=True)

        # Two back-to-back runs sharing the sidecar: the first
        # populates it, the second — a fresh stack, simulating a
        # process restart — must serve >= 90% of sentence shapes
        # from disk without parsing.
        first_cache, _ = PersistentParseCache.load_or_create(
            sidecar, signature
        )
        warm_results_first, warm_first = _lane(
            records, bitset=False, persistent=first_cache
        )
        first_cache.save()
        second_cache, loaded = PersistentParseCache.load_or_create(
            sidecar, signature
        )
        assert loaded
        warm_results, warm = _lane(
            records, bitset=False, persistent=second_cache
        )

        combined_cache, _ = PersistentParseCache.load_or_create(
            sidecar, signature
        )
        combined_results, combined = _lane(
            records, bitset=True, persistent=combined_cache
        )

        # Hard invariant: the fast paths change how parses are
        # produced, never what is extracted.
        assert bitset_results == cold_results
        assert warm_results_first == cold_results
        assert warm_results == cold_results
        assert combined_results == cold_results

        return {
            "cold": cold,
            "bitset": bitset,
            "warm_first": warm_first,
            "warm": warm,
            "combined": combined,
        }

    lanes = benchmark.pedantic(run, rounds=1, iterations=1)
    cold = lanes["cold"]

    def row(label, stats):
        return (
            label,
            f"{stats['parse_seconds'] * 1000:.1f}ms",
            stats["sentences_parsed"],
            f"{stats['persistent_parse_hit_rate']:.0%}",
            f"{stats['extract_seconds']:.2f}s",
        )

    print_table(
        f"Parser lanes ({CORPUS_SIZE} records, consistent style)",
        ["lane", "parse time", "parses", "sidecar hits", "total"],
        [
            row("cold (dict tables)", cold),
            row("bitset", lanes["bitset"]),
            row("warm sidecar (run 1)", lanes["warm_first"]),
            row("warm sidecar (run 2)", lanes["warm"]),
            row("combined", lanes["combined"]),
        ],
    )

    payload = {
        "bench": "bench_parse",
        "corpus_size": CORPUS_SIZE,
        **lanes,
        # None (JSON null) when the combined lane parsed essentially
        # nothing — a ratio against a microsecond denominator is
        # noise, not a speedup (this once reported 238,597,814x).
        "parse_speedup_combined_vs_cold": guarded_ratio(
            cold["parse_seconds"],
            lanes["combined"]["parse_seconds"],
            floor=1e-4,
        ),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=1, sort_keys=True))

    # Acceptance bars.  The second back-to-back run must be served
    # almost entirely from the sidecar, and the shipping
    # configuration must at least halve time spent inside the parser.
    assert cold["parse_seconds"] > 0.0
    assert lanes["warm"]["persistent_parse_hit_rate"] >= 0.9
    assert (
        lanes["combined"]["parse_seconds"]
        <= 0.5 * cold["parse_seconds"]
    )
    # Bitset lane actually took its fast path (and cold did not).
    assert lanes["bitset"]["match_bitset_hits"] > 0
    assert cold["match_bitset_hits"] == 0
