"""EXT-NUMBOOL — §3.3's proposed numeric Boolean features.

"But for classifications containing numeric information, performance
is poor … To solve this problem, we plan to add one more type of
feature — a numeric Boolean feature."  Alcohol use has the classes
never / social / 1-2 per week / >2 per week; the features test
whether a number ≤ 2 (or > 2) appears in the sentence.
"""

from conftest import print_table

from repro.eval import categorical_experiment
from repro.extraction import FeatureOptions


def test_numeric_boolean_feature_extension(benchmark, cohort):
    records, golds = cohort

    def run():
        without = categorical_experiment(
            "alcohol_use", records, golds,
            options=FeatureOptions(), seed=0,
        )
        with_thresholds = categorical_experiment(
            "alcohol_use", records, golds,
            options=FeatureOptions(numeric_thresholds=(2.0,)), seed=0,
        )
        return without, with_thresholds

    without, with_thresholds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Alcohol use (never/social/1-2 week/>2 week), 5-fold CV x 10",
        ["feature set", "accuracy", "tree features"],
        [
            ("words only (paper v1)", f"{without.accuracy:.1%}",
             f"{without.min_features}-{without.max_features}"),
            ("+ numeric Booleans (proposed)",
             f"{with_thresholds.accuracy:.1%}",
             f"{with_thresholds.min_features}-"
             f"{with_thresholds.max_features}"),
        ],
    )

    # The extension the paper predicts: numeric classes improve.
    assert with_thresholds.accuracy > without.accuracy
    benchmark.extra_info["gain"] = round(
        with_thresholds.accuracy - without.accuracy, 4
    )
