"""STYLES — per-style accuracy matrix over adversarial dictation packs.

§5's caveat made measurable: every registered style pack (terse,
verbose, abbreviation-dense, run-on sections, OCR noise, transcription
noise, cardiology labs) runs through the unchanged extraction pipeline
and reports per-attribute precision/recall next to the consistent
single-clinician baseline.  Writes ``EVAL_styles.json`` — the same
artifact ``repro evaluate --style-matrix`` emits and CI gates on.

Gates:
* consistent-style row equals the pinned pre-pack baseline EXACTLY;
* every pack's corpus passes gold-alignment validation (0 violations).
"""

import json
from pathlib import Path

from conftest import PAPER_SEED, print_table

from repro.eval import run_style_matrix, render_style_table

ARTIFACT = (
    Path(__file__).resolve().parent.parent / "EVAL_styles.json"
)


def test_style_matrix(benchmark):
    results = benchmark.pedantic(
        lambda: run_style_matrix(seed=PAPER_SEED),
        rounds=1,
        iterations=1,
    )
    ARTIFACT.write_text(
        json.dumps(results, indent=1, sort_keys=True) + "\n"
    )

    rows = []
    for name, entry in results["packs"].items():
        numeric = entry["numeric"].values()
        terms = entry["terms"].values()
        rows.append((
            name,
            f"{min(v['precision'] for v in numeric):.1%}",
            f"{min(v['recall'] for v in numeric):.1%}",
            f"{min(v['precision'] for v in terms):.1%}",
            f"{min(v['recall'] for v in terms):.1%}",
            f"{entry['smoking_accuracy']:.1%}",
        ))
    print_table(
        "Accuracy vs dictation style (min per-attribute, 50 records)",
        ["pack", "num P", "num R", "terms P", "terms R", "smoking"],
        rows,
    )
    print(render_style_table(results))

    assert results["baseline_match"], (
        "consistent-style accuracy deviates from the pinned baseline"
    )
    for name, entry in results["packs"].items():
        assert entry["gold_violations"] == 0, name
