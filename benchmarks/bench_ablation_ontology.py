"""ABL-ONTO — §5's error analysis, made measurable.

"False positives are mainly caused by the incompleteness of domain
ontology.  Higher performance can be achieved by choosing an
appropriate medical database … the low recall of predefined past
surgical history … is due to failures to recognize the synonyms of
predefined surgical terms … This problem can be solved by introducing
synonyms."

Two sweeps: term metrics vs ontology coverage, and the synonym fix
for predefined-surgery assignment.
"""

from conftest import print_table

from repro.eval import paper_ontology, table1_experiment
from repro.ontology import default_ontology

COVERAGES = (1.0, 0.9, 0.75, 0.5)


def test_ontology_coverage_sweep(benchmark, small_cohort):
    records, golds = small_cohort

    def run():
        rows = []
        for coverage in COVERAGES:
            onto = paper_ontology(coverage=coverage)
            table = table1_experiment(records, golds, ontology=onto)
            p, r = table["other_past_medical_history"]
            rows.append((f"{coverage:.0%}", f"{p:.1%}", f"{r:.1%}", r))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Other-PMH extraction vs ontology coverage (20 records)",
        ["coverage", "precision", "recall"],
        [row[:3] for row in rows],
    )
    # Recall falls monotonically-ish as the ontology shrinks.
    assert rows[0][3] >= rows[-1][3]


def test_synonym_fix_for_predefined_surgery(benchmark, cohort):
    records, golds = cohort

    def run():
        broken = table1_experiment(
            records, golds, ontology=default_ontology(),
            use_synonyms=False,
        )
        fixed = table1_experiment(
            records, golds, ontology=default_ontology(),
            use_synonyms=True,
        )
        return broken, fixed

    broken, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name in (
        "predefined_past_surgical_history",
        "other_past_surgical_history",
    ):
        rows.append(
            (name,
             f"{broken[name][0]:.1%} / {broken[name][1]:.1%}",
             f"{fixed[name][0]:.1%} / {fixed[name][1]:.1%}")
        )
    print_table(
        "Predefined-surgery synonym fix (paper's proposed remedy)",
        ["attribute", "v1 P / R", "with synonyms P / R"],
        rows,
    )

    pre = "predefined_past_surgical_history"
    other = "other_past_surgical_history"
    # The fix recovers predefined recall and other-surgical precision.
    assert fixed[pre][1] > broken[pre][1]
    assert fixed[other][0] >= broken[other][0]
