"""Substrate micro-benchmarks: the building blocks' raw speed.

Not a paper artifact — these guard against performance regressions in
the layers every experiment depends on.
"""

from repro.linkgrammar import LinkGrammarParser
from repro.ml import Dataset, ID3Classifier
from repro.nlp import analyze, tokenize
from repro.ontology import default_ontology

FIGURE1 = (
    "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and "
    "weight of 154 pounds."
)


def test_tokenizer_speed(benchmark):
    text = FIGURE1 * 20
    tokens = benchmark(lambda: tokenize(text))
    assert len(tokens) >= 300


def test_nlp_pipeline_speed(benchmark):
    document = benchmark(lambda: analyze(FIGURE1))
    assert len(document.numbers()) == 4


def test_parser_speed_figure1(benchmark):
    parser = LinkGrammarParser(max_linkages=1)
    words = [w.lower() for w in tokenize(FIGURE1)]
    linkage = benchmark(lambda: parser.parse_one(words))
    assert linkage.is_connected()


def test_ontology_lookup_speed(benchmark):
    ontology = default_ontology()
    matches = benchmark(
        lambda: ontology.lookup("high blood pressures")
    )
    assert matches


def test_parser_length_scaling(benchmark):
    """Parse time across sentence lengths (the O(n³) curve).

    Sentences grow by appending "pulse of N" conjuncts to the Figure 1
    frame, the dictation pattern that actually gets long in practice.
    """
    import time

    parser = LinkGrammarParser(max_linkages=1, max_words=60)

    def sentence(conjuncts: int) -> list[str]:
        words = "blood pressure is 144/90".split()
        for i in range(conjuncts):
            words += [",", "pulse", "of", str(60 + i)]
        return words + ["."]

    def run():
        timings = []
        for conjuncts in (2, 4, 8, 12):
            words = sentence(conjuncts)
            started = time.perf_counter()
            linkage = parser.parse_one(words)
            elapsed = time.perf_counter() - started
            assert linkage.is_connected()
            timings.append((len(words), elapsed))
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    for length, elapsed in timings:
        print(f"  {length:3d} words: {elapsed * 1000:7.1f} ms")
    # Polynomial, not exponential: 3x the words may cost ~30x the
    # time (n^3), but must stay well under 1000x.
    first, last = timings[0][1], timings[-1][1]
    assert last < max(first, 1e-4) * 1000


def test_id3_training_speed(benchmark):
    pairs = []
    for i in range(60):
        pairs.append(((f"quit", f"n{i}"), "former"))
        pairs.append(((f"current", f"n{i+100}"), "current"))
        pairs.append(((f"never", f"n{i+200}"), "never"))
    dataset = Dataset.from_pairs(pairs)
    classifier = benchmark(lambda: ID3Classifier().fit(dataset))
    assert classifier.features_used()
