"""NUM — §5 in-text: precision = recall = 100% on all eight numeric
attributes over the 50-record consistent-style cohort."""

from conftest import print_table

from repro.eval import numeric_experiment


def test_numeric_extraction_all_attributes(benchmark, cohort):
    records, golds = cohort

    result = benchmark.pedantic(
        lambda: numeric_experiment(records, golds),
        rounds=1,
        iterations=1,
    )

    rows = [
        (name, "100.0% / 100.0%", f"{p:.1%} / {r:.1%}")
        for name, p, r in result.rows()
    ]
    print_table(
        "Numeric extraction (50 records, consistent style)",
        ["attribute", "paper P / R", "measured P / R"],
        rows,
    )
    print(f"association methods used: {result.methods}")

    # The paper's consistent-dictation setting reproduces exactly.
    for name, p, r in result.rows():
        assert p == 1.0, f"{name} precision {p:.1%}"
        assert r == 1.0, f"{name} recall {r:.1%}"
    benchmark.extra_info["methods"] = result.methods
