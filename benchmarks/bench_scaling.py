"""SCALE — the introduction's motivation, quantified.

"Means to systematically examine patient charts will provide a method
for clinicians to examine a significantly larger set of cases."
Manual chart review is "infinitely time-consuming"; the system's value
is linear-time throughput.  This bench measures records/second across
cohort sizes and checks the pipeline scales linearly (no accidental
quadratic behaviour in the NLP or parser layers).
"""

import time

from conftest import print_table

from repro.extraction import NumericExtractor, TermExtractor
from repro.synth import CohortSpec, RecordGenerator

SIZES = (5, 10, 20)


def _cohort(size: int):
    return RecordGenerator(seed=13).generate_cohort(
        CohortSpec(
            size=size,
            smoking_counts={
                "never": size - 3, "current": 1, "former": 1, None: 1,
            },
        )
    )


def test_extraction_scales_linearly(benchmark):
    numeric = NumericExtractor()
    terms = TermExtractor()

    def run():
        rows = []
        for size in SIZES:
            records, _ = _cohort(size)
            started = time.perf_counter()
            for record in records:
                numeric.extract_record(record)
                terms.extract_record(record)
            elapsed = time.perf_counter() - started
            rows.append(
                (size, f"{elapsed:.2f}s", f"{size / elapsed:.1f}",
                 elapsed)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extraction throughput vs cohort size",
        ["records", "elapsed", "records/s"],
        [row[:3] for row in rows],
    )

    # Per-record cost must not grow with cohort size (linear scaling);
    # allow 2x jitter for small samples.
    per_record = [row[3] / row[0] for row in rows]
    assert per_record[-1] <= per_record[0] * 2.0
