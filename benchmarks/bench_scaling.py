"""SCALE — the introduction's motivation, quantified.

"Means to systematically examine patient charts will provide a method
for clinicians to examine a significantly larger set of cases."
Manual chart review is "infinitely time-consuming"; the system's value
is corpus-scale throughput.  This bench measures the engine over a
200-record consistent-style cohort in five lanes:

* **seed** — the pre-engine hot path: per-attribute NLP re-processing,
  per-record parse cache, no pruning statistics (timed on a slice and
  reported as a rate; the cost per record is constant by construction);
* **serial cold** — ``workers=1`` with the stack built from source
  (expression expansion, ontology load) at start-up;
* **serial warm** — ``workers=1`` with the stack rehydrated from a
  compiled artifact (one pickle load);
* **parallel cold / warm** — the same two start-up modes fanned out
  with ``workers=4``, with per-worker initializer time reported.

It also times the compile→save→load cycle itself, checks the pipeline
scales linearly (no accidental quadratic behaviour), and dumps one
``BENCH_scaling.json`` artifact so the perf trajectory is
machine-readable across PRs.

Throughput gates are environment-aware: the parallel-beats-serial
multiplier is only asserted when the host actually has the cores for
it (CI's bench-smoke job runs on 4-vCPU runners); everywhere, warm
start-up must beat cold start-up and the caches must be earning their
keep.
"""

import json
import os
import time
from pathlib import Path

from conftest import print_table

from repro.extraction import NumericExtractor, RecordExtractor, TermExtractor
from repro.linkgrammar.dictionary import Dictionary
from repro.linkgrammar.parser import LinkGrammarParser
from repro.ontology.builder import build_concepts
from repro.ontology.store import OntologyStore
from repro.runtime import CorpusRunner, ExtractionCaches
from repro.runtime.compiled import CompiledArtifact
from repro.synth import CohortSpec, RecordGenerator

SIZES = (10, 20, 40)
CORPUS_SIZE = 200
SEED_SLICE = 20  # seed-style emulation is ~30x slower; time a slice
WORKERS = 4
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"


def _cohort(size: int):
    return RecordGenerator(seed=13).generate_cohort(
        CohortSpec(
            size=size,
            smoking_counts={
                "never": size - 3, "current": 1, "former": 1, None: 1,
            },
        )
    )


def _seed_style_rate(records) -> float:
    """Throughput of the pre-engine path: no shared documents, no
    cross-record cache — every attribute re-runs the NLP pipeline and
    every record re-parses its sentences from scratch."""
    numeric = NumericExtractor(
        linkage_cache=None  # fresh default cache, bounded per call
    )
    terms = TermExtractor()
    started = time.perf_counter()
    for record in records:
        numeric.linkage_cache.clear()  # emulate the per-record cache
        for attr in numeric.attributes:
            text = record.section_text(attr.section)
            if text:
                numeric.extract_attribute(attr, text)
        terms.extract_record(record)
    return len(records) / (time.perf_counter() - started)


def _build_cold_stack() -> RecordExtractor:
    """The from-source extraction stack, built without the process-
    wide dictionary/ontology singletons.  Earlier tests in the same
    pytest process warm those singletons, so timing ``RecordExtractor
    ()`` directly would report a few microseconds of cache hits; this
    mirrors what a fresh process (or cold pool worker) actually pays:
    expression expansion, match-table derivation, and the ontology
    SQLite load."""
    dictionary = Dictionary()
    dictionary.match_tables()
    ontology = OntologyStore(build_concepts())
    caches = ExtractionCaches()
    numeric = NumericExtractor(
        parser=LinkGrammarParser(dictionary=dictionary),
        document_cache=caches.documents,
        linkage_cache=caches.linkages,
    )
    terms = TermExtractor(
        ontology=ontology, document_cache=caches.documents
    )
    return RecordExtractor(numeric=numeric, terms=terms, caches=caches)


def _compile_cycle(path: Path) -> tuple[CompiledArtifact, dict]:
    """Build, persist, and reload the artifact, timing each phase."""
    started = time.perf_counter()
    artifact = CompiledArtifact.build(fresh=True)
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    size_bytes = artifact.save(path)
    save_seconds = time.perf_counter() - started

    started = time.perf_counter()
    loaded = CompiledArtifact.load(path)
    load_seconds = time.perf_counter() - started

    started = time.perf_counter()
    loaded.make_extractor()
    make_seconds = time.perf_counter() - started
    return loaded, {
        "build_seconds": build_seconds,
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
        "make_extractor_seconds": make_seconds,
        "artifact_bytes": size_bytes,
    }


def test_extraction_scales_linearly(benchmark):
    def run():
        rows = []
        runner = CorpusRunner(RecordExtractor())
        for size in SIZES:
            records, _ = _cohort(size)
            started = time.perf_counter()
            runner.run(records)
            elapsed = time.perf_counter() - started
            rows.append(
                (size, f"{elapsed:.2f}s", f"{size / elapsed:.1f}",
                 elapsed)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extraction throughput vs cohort size",
        ["records", "elapsed", "records/s"],
        [row[:3] for row in rows],
    )

    # Per-record cost must not grow with cohort size (linear scaling);
    # allow 2x jitter for small samples.
    per_record = [row[3] / row[0] for row in rows]
    assert per_record[-1] <= per_record[0] * 2.0


def test_corpus_engine_speedup(benchmark, tmp_path):
    """Seed vs cold/warm serial vs cold/warm parallel on the
    200-record cohort; emits BENCH_scaling.json."""
    records, _ = _cohort(CORPUS_SIZE)
    cpu_count = os.cpu_count() or 1

    def run():
        artifact, compile_stats = _compile_cycle(
            tmp_path / "stack.pkl"
        )
        seed_rate = _seed_style_rate(records[:SEED_SLICE])

        started = time.perf_counter()
        cold_extractor = _build_cold_stack()
        cold_init = time.perf_counter() - started
        serial_cold = CorpusRunner(cold_extractor, workers=1)
        serial_cold.run(records)

        started = time.perf_counter()
        serial_warm = CorpusRunner(artifact=artifact, workers=1)
        warm_init = time.perf_counter() - started
        serial_warm.run(records)

        parallel_cold = CorpusRunner(workers=WORKERS)
        parallel_cold.run(records)

        parallel_warm = CorpusRunner(
            artifact=artifact, workers=WORKERS
        )
        parallel_warm.run(records)

        return {
            "compile": compile_stats,
            "seed_rate": seed_rate,
            "cold_init_seconds": cold_init,
            "warm_init_seconds": warm_init,
            "serial_cold": serial_cold.stats(),
            "serial_warm": serial_warm.stats(),
            "parallel_cold": parallel_cold.stats(),
            "parallel_warm": parallel_warm.stats(),
        }

    lanes = benchmark.pedantic(run, rounds=1, iterations=1)
    seed_rate = lanes["seed_rate"]
    serial_cold = lanes["serial_cold"]
    serial_warm = lanes["serial_warm"]
    parallel_cold = lanes["parallel_cold"]
    parallel_warm = lanes["parallel_warm"]
    serial_rate = serial_warm["records_per_sec"]
    parallel_rate = parallel_warm["records_per_sec"]

    def row(label, stats):
        return (
            label,
            f"{stats['records_per_sec']:.1f}",
            f"{stats['records_per_sec'] / seed_rate:.1f}x",
            f"{stats['worker_init_seconds']:.3f}s",
        )

    print_table(
        f"Corpus engine ({CORPUS_SIZE} records, consistent style, "
        f"{cpu_count} cpus)",
        ["configuration", "records/s", "vs seed", "worker init"],
        [
            ("seed (per-attribute, no engine)", f"{seed_rate:.1f}",
             "1.0x", "-"),
            row("engine serial cold", serial_cold),
            row("engine serial warm", serial_warm),
            row(f"engine workers={WORKERS} cold", parallel_cold),
            row(f"engine workers={WORKERS} warm", parallel_warm),
        ],
    )
    compile_stats = lanes["compile"]
    print_table(
        "Warm start (compiled artifact)",
        ["metric", "value"],
        [
            ("compile (build+save)",
             f"{compile_stats['build_seconds']:.2f}s + "
             f"{compile_stats['save_seconds']:.3f}s"),
            ("load + make_extractor",
             f"{compile_stats['load_seconds']:.3f}s + "
             f"{compile_stats['make_extractor_seconds']:.3f}s"),
            ("artifact size",
             f"{compile_stats['artifact_bytes'] / 1e6:.1f} MB"),
            ("cold stack build",
             f"{lanes['cold_init_seconds']:.2f}s"),
            ("warm stack build",
             f"{lanes['warm_init_seconds']:.3f}s"),
            ("linkage cache hit rate",
             f"{serial_warm['linkage_cache_hit_rate']:.1%}"),
            ("prune ratio", f"{serial_warm['prune_ratio']:.1%}"),
        ],
    )

    ARTIFACT.write_text(json.dumps(
        {
            "bench": "bench_scaling",
            "corpus_size": CORPUS_SIZE,
            "cpu_count": cpu_count,
            "compile": compile_stats,
            "cold_init_seconds": lanes["cold_init_seconds"],
            "warm_init_seconds": lanes["warm_init_seconds"],
            "seed_records_per_sec": seed_rate,
            "serial_cold": serial_cold,
            "serial_warm": serial_warm,
            "parallel_cold": parallel_cold,
            "parallel_warm": parallel_warm,
            "speedup_serial_vs_seed": serial_rate / seed_rate,
            "speedup_parallel_vs_seed": parallel_rate / seed_rate,
            "speedup_parallel_vs_serial_warm": (
                parallel_rate / serial_rate
            ),
        },
        indent=1,
        sort_keys=True,
    ))

    # Acceptance bars, everywhere: the engine must beat the seed
    # path, warm start-up must beat cold start-up, the cross-record
    # cache must be earning its keep, and the document cache must
    # have stopped thrashing (it is sized to the corpus now).
    assert parallel_rate >= 2.0 * seed_rate
    assert serial_rate >= 2.0 * seed_rate
    assert lanes["warm_init_seconds"] < lanes["cold_init_seconds"]
    assert serial_warm["linkage_cache_hit_rate"] > 0.0
    documents = serial_warm["engine"]["documents"]
    assert documents["evictions"] <= documents["misses"] * 0.05
    # Regression gate: the parallel lanes used to size each worker's
    # document cache from the chunk size (8 * chunk), thrashing once
    # a worker had chewed through a few chunks (126 evictions per 986
    # misses on this cohort).  Sizing by per-worker record share must
    # keep the parallel lanes as eviction-free as the serial one.
    for lane in (parallel_cold, parallel_warm):
        lane_documents = lane["engine"]["documents"]
        assert (
            lane_documents["evictions"]
            <= lane_documents["misses"] * 0.05
        )
    # Throughput multiplier gates need real cores behind the pool;
    # on smaller hosts the equivalence tests still cover correctness
    # and the CI bench-smoke job (4 vCPUs) enforces the multiplier.
    if cpu_count >= 4:
        assert parallel_rate >= 3.0 * serial_rate
        assert parallel_warm["worker_init_seconds"] > 0.0
    elif cpu_count >= 2:
        assert parallel_rate >= serial_rate
