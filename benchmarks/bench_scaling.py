"""SCALE — the introduction's motivation, quantified.

"Means to systematically examine patient charts will provide a method
for clinicians to examine a significantly larger set of cases."
Manual chart review is "infinitely time-consuming"; the system's value
is corpus-scale throughput.  This bench measures three engine
configurations over a 200-record consistent-style cohort:

* **seed** — the pre-engine hot path: per-attribute NLP re-processing,
  per-record parse cache, no pruning statistics (timed on a slice and
  reported as a rate; the cost per record is constant by construction);
* **serial** — the CorpusRunner's ``workers=1`` path with the shared
  document cache, the cross-record linkage cache, and parser pruning;
* **parallel** — the same engine fanned out with ``workers=4``.

It also checks the pipeline scales linearly (no accidental quadratic
behaviour) and dumps one ``BENCH_scaling.json`` artifact so the perf
trajectory is machine-readable across PRs.
"""

import json
import time
from pathlib import Path

from conftest import print_table

from repro.extraction import NumericExtractor, RecordExtractor, TermExtractor
from repro.runtime import CorpusRunner
from repro.synth import CohortSpec, RecordGenerator

SIZES = (10, 20, 40)
CORPUS_SIZE = 200
SEED_SLICE = 20  # seed-style emulation is ~30x slower; time a slice
WORKERS = 4
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"


def _cohort(size: int):
    return RecordGenerator(seed=13).generate_cohort(
        CohortSpec(
            size=size,
            smoking_counts={
                "never": size - 3, "current": 1, "former": 1, None: 1,
            },
        )
    )


def _seed_style_rate(records) -> float:
    """Throughput of the pre-engine path: no shared documents, no
    cross-record cache — every attribute re-runs the NLP pipeline and
    every record re-parses its sentences from scratch."""
    numeric = NumericExtractor(
        linkage_cache=None  # fresh default cache, bounded per call
    )
    terms = TermExtractor()
    started = time.perf_counter()
    for record in records:
        numeric.linkage_cache.clear()  # emulate the per-record cache
        for attr in numeric.attributes:
            text = record.section_text(attr.section)
            if text:
                numeric.extract_attribute(attr, text)
        terms.extract_record(record)
    return len(records) / (time.perf_counter() - started)


def test_extraction_scales_linearly(benchmark):
    def run():
        rows = []
        runner = CorpusRunner(RecordExtractor())
        for size in SIZES:
            records, _ = _cohort(size)
            started = time.perf_counter()
            runner.run(records)
            elapsed = time.perf_counter() - started
            rows.append(
                (size, f"{elapsed:.2f}s", f"{size / elapsed:.1f}",
                 elapsed)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extraction throughput vs cohort size",
        ["records", "elapsed", "records/s"],
        [row[:3] for row in rows],
    )

    # Per-record cost must not grow with cohort size (linear scaling);
    # allow 2x jitter for small samples.
    per_record = [row[3] / row[0] for row in rows]
    assert per_record[-1] <= per_record[0] * 2.0


def test_corpus_engine_speedup(benchmark):
    """Seed vs serial-engine vs parallel-engine on the 200-record
    cohort; emits BENCH_scaling.json."""
    records, _ = _cohort(CORPUS_SIZE)

    def run():
        seed_rate = _seed_style_rate(records[:SEED_SLICE])

        serial = CorpusRunner(RecordExtractor(), workers=1)
        serial.run(records)
        serial_stats = serial.stats()

        parallel = CorpusRunner(RecordExtractor(), workers=WORKERS)
        parallel.run(records)
        parallel_stats = parallel.stats()
        return seed_rate, serial_stats, parallel_stats

    seed_rate, serial_stats, parallel_stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    serial_rate = serial_stats["records_per_sec"]
    parallel_rate = parallel_stats["records_per_sec"]
    print_table(
        f"Corpus engine ({CORPUS_SIZE} records, consistent style)",
        ["configuration", "records/s", "vs seed"],
        [
            ("seed (per-attribute, no engine)", f"{seed_rate:.1f}",
             "1.0x"),
            ("engine serial", f"{serial_rate:.1f}",
             f"{serial_rate / seed_rate:.1f}x"),
            (f"engine workers={WORKERS}", f"{parallel_rate:.1f}",
             f"{parallel_rate / seed_rate:.1f}x"),
        ],
    )
    print_table(
        "Engine internals (serial run)",
        ["metric", "value"],
        [
            ("linkage cache hit rate",
             f"{serial_stats['linkage_cache_hit_rate']:.1%}"),
            ("prune ratio", f"{serial_stats['prune_ratio']:.1%}"),
        ],
    )

    ARTIFACT.write_text(json.dumps(
        {
            "bench": "bench_scaling",
            "corpus_size": CORPUS_SIZE,
            "seed_records_per_sec": seed_rate,
            "serial": serial_stats,
            "parallel": parallel_stats,
            "speedup_serial_vs_seed": serial_rate / seed_rate,
            "speedup_parallel_vs_seed": parallel_rate / seed_rate,
        },
        indent=1,
        sort_keys=True,
    ))

    # The acceptance bar: the engine at workers=4 must at least double
    # the seed's serial throughput, and the cross-record cache must be
    # earning its keep on a consistent-style cohort.
    assert parallel_rate >= 2.0 * seed_rate
    assert serial_stats["linkage_cache_hit_rate"] > 0.0
