"""FIG2 — the Figure 2 system architecture, end to end.

Record files → section split → NLP → three extractors → result
database, measured as throughput over the cohort.
"""

from conftest import print_table

from repro import RecordExtractor, ResultStore, split_record


def test_full_pipeline_throughput(benchmark, small_cohort):
    records, golds = small_cohort
    extractor = RecordExtractor()
    extractor.train_categorical(records, golds)

    def run():
        store = ResultStore()
        reparsed = [split_record(r.raw_text) for r in records]
        results = extractor.extract_all(reparsed)
        store.save_all(results)
        return store, results

    store, results = benchmark.pedantic(run, rounds=1, iterations=1)

    assert len(store.patients()) == len(records)
    filled_numeric = sum(
        1
        for result in results
        for v in result.numeric.values()
        if v is not None
    )
    print_table(
        "Figure 2 pipeline (20 records end to end)",
        ["stage", "output"],
        [
            ("records stored", len(store.patients())),
            ("numeric cells filled", filled_numeric),
            ("term cells filled", sum(
                len(t) for r in results for t in r.terms.values()
            )),
            ("categorical cells filled", sum(
                1
                for r in results
                for v in r.categorical.values()
                if v is not None
            )),
        ],
    )
    assert filled_numeric == 8 * len(records)
