"""FIG2 — the Figure 2 system architecture, end to end.

Record files → section split → NLP → three extractors → result
database, driven by the corpus runner: once through the serial
reference path and once fanned out over worker processes, asserting
the two runs fill identical cells.
"""

from conftest import print_table

from repro import RecordExtractor, ResultStore, split_record
from repro.runtime import CorpusRunner


def test_full_pipeline_throughput(benchmark, small_cohort):
    records, golds = small_cohort
    extractor = RecordExtractor()
    extractor.train_categorical(records, golds)

    def run():
        store = ResultStore()
        reparsed = [split_record(r.raw_text) for r in records]
        serial = CorpusRunner(extractor, workers=1)
        results = serial.run(reparsed)
        store.store_many(results)
        parallel = CorpusRunner(extractor, workers=2)
        parallel_results = parallel.run(reparsed)
        return store, results, serial, parallel, parallel_results

    store, results, serial, parallel, parallel_results = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    assert len(store.patients()) == len(records)
    assert parallel_results == results  # fan-out is exact
    filled_numeric = sum(
        1
        for result in results
        for v in result.numeric.values()
        if v is not None
    )
    print_table(
        "Figure 2 pipeline (20 records end to end)",
        ["stage", "output"],
        [
            ("records stored", len(store.patients())),
            ("numeric cells filled", filled_numeric),
            ("term cells filled", sum(
                len(t) for r in results for t in r.terms.values()
            )),
            ("categorical cells filled", sum(
                1
                for r in results
                for v in r.categorical.values()
                if v is not None
            )),
        ],
    )
    print_table(
        "Serial vs parallel throughput",
        ["configuration", "records/s"],
        [
            ("serial", f"{serial.throughput():.1f}"),
            ("workers=2", f"{parallel.throughput():.1f}"),
        ],
    )
    assert filled_numeric == 8 * len(records)
