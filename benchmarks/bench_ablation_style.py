"""ABL-STYLE — §5's caveat: "If the size of the data set increases or
the writing style is full of variants, performance may be degraded."

Numeric extraction P/R as dictation variability rises from the
single-clinician setting to a fully varied multi-clinician style.
"""

from conftest import print_table, varied_cohort

from repro.eval import numeric_experiment

LEVELS = (0.0, 0.5, 1.0)


def test_style_variability_sweep(benchmark):
    def run():
        rows = []
        for level in LEVELS:
            records, golds = varied_cohort(level)
            result = numeric_experiment(records, golds)
            p, r = result.overall()
            rows.append((f"{level:.1f}", f"{p:.1%}", f"{r:.1%}",
                         p, r))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Numeric extraction vs dictation variability (20 records)",
        ["variability", "precision", "recall"],
        [row[:3] for row in rows],
    )

    # Consistent style is perfect; performance never *improves* as
    # variability rises (the paper's predicted degradation).
    assert rows[0][3] == 1.0 and rows[0][4] == 1.0
    recalls = [row[4] for row in rows]
    assert recalls[0] >= recalls[-1]
