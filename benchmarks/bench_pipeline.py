"""PIPELINE — making the post-parse pipeline disappear.

With parsing amortised away (BENCH_parse.json), the warm lane's time
moved into everything *around* the parser: re-tokenizing sections per
annotator pass, probing the ontology at every token, re-running the
numeric fallback regexes per attribute.  This bench measures the fused
single-pass scanner + term automaton + consolidated regex prefilters
against the pre-PR staged pipeline on the 200-record consistent
cohort, in four lanes producing bit-for-bit identical output:

* **staged** — the pre-PR configuration: four separate NLP annotator
  passes, first-token-prefilter term scanning, per-pattern numeric
  regex loops (kept in-tree as the parity oracle);
* **fused** — the shipping configuration: one fused
  tokenize+sentence+pos+number traversal, automaton-driven term
  candidate scanning over cached sentence views, alternation-group
  regex prefilters;
* **fused-parallel** — the fused lane across 2 worker processes;
* **fused-profiled** — the fused lane under ``--profile-stages``,
  checking the per-stage wall-time counters sum to the lane's
  extraction time (profiling must measure, not distort).

Each serial lane runs twice on one stack: the first (cold) pass pays
NLP + parsing, the second (warm) pass is the steady state the service
lives in.  Gates (mirrored in CI's bench-pipeline job from
``BENCH_pipeline.json``): warm fused time <= 0.7x warm staged time,
and the profiled lane's stage seconds sum to its extract time within
20%.
"""

import json
import time
from pathlib import Path

from conftest import print_table

from repro.extraction import (
    NumericExtractor,
    RecordExtractor,
    TermExtractor,
)
from repro.linkgrammar.parser import LinkGrammarParser
from repro.nlp.pipeline import default_pipeline
from repro.runtime import CorpusRunner, ExtractionCaches
from repro.runtime.compiled import CompiledArtifact
from repro.runtime.metrics import guarded_ratio
from repro.storage import ResultStore
from repro.synth import CohortSpec, RecordGenerator

CORPUS_SIZE = 200
ARTIFACT = (
    Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
)


def _cohort(size: int):
    return RecordGenerator(seed=13).generate_cohort(
        CohortSpec(
            size=size,
            smoking_counts={
                "never": size - 3, "current": 1, "former": 1, None: 1,
            },
        )
    )


def _staged_stack() -> RecordExtractor:
    """The pre-PR pipeline: staged NLP, probe-everything term scan,
    per-pattern regex loops."""
    caches = ExtractionCaches(pipeline=default_pipeline(fused=False))
    numeric = NumericExtractor(
        parser=LinkGrammarParser(),
        document_cache=caches.documents,
        linkage_cache=caches.linkages,
        fast_paths=False,
    )
    terms = TermExtractor(
        document_cache=caches.documents,
        legacy_scan=True,
        use_automaton=False,
    )
    return RecordExtractor(numeric=numeric, terms=terms, caches=caches)


def _timed_run(runner, records):
    started = time.perf_counter()
    results = runner.run(records)
    return results, time.perf_counter() - started


def _serial_lane(extractor, records, profile_stages=False):
    """Cold + warm passes over one stack; returns results and stats."""
    runner = CorpusRunner(extractor, profile_stages=profile_stages)
    cold_results, cold_seconds = _timed_run(runner, records)
    warm_results, warm_seconds = _timed_run(runner, records)
    assert warm_results == cold_results
    return cold_results, {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "stages": runner.stats()["stages"],
        "extract_seconds": runner.metrics.timers["extract_seconds"],
    }


def _store_digest(tmp_path, name, results):
    store = ResultStore(tmp_path / f"{name}.db")
    store.store_many(results)
    digest = store.content_digest()
    store.close()
    return digest


def test_pipeline_lanes(benchmark, tmp_path):
    records, _ = _cohort(CORPUS_SIZE)
    artifact = CompiledArtifact.build()

    def run():
        staged_results, staged = _serial_lane(_staged_stack(), records)
        fused_results, fused = _serial_lane(
            artifact.make_extractor(), records
        )
        profiled_results, profiled = _serial_lane(
            artifact.make_extractor(), records, profile_stages=True
        )
        parallel_runner = CorpusRunner(
            artifact=artifact, workers=2, chunk_size=25
        )
        parallel_results, parallel_seconds = _timed_run(
            parallel_runner, records
        )

        # Hard invariant: the fused scanner, automaton, and regex
        # prefilters change how the pipeline runs, never what it
        # extracts — including provenance, across process fan-out.
        assert fused_results == staged_results
        assert profiled_results == staged_results
        assert parallel_results == staged_results
        for a, b in zip(fused_results, staged_results):
            assert a.provenance == b.provenance
        digests = {
            _store_digest(tmp_path, "staged", staged_results),
            _store_digest(tmp_path, "fused", fused_results),
            _store_digest(tmp_path, "parallel", parallel_results),
        }
        assert len(digests) == 1, digests

        return {
            "staged": staged,
            "fused": fused,
            "fused_profiled": profiled,
            "fused_parallel": {"total_seconds": parallel_seconds},
        }

    lanes = benchmark.pedantic(run, rounds=1, iterations=1)
    staged, fused = lanes["staged"], lanes["fused"]
    profiled = lanes["fused_profiled"]

    def row(label, stats):
        return (
            label,
            f"{stats['cold_seconds']:.2f}s",
            f"{stats['warm_seconds'] * 1000:.0f}ms",
        )

    print_table(
        f"Post-parse pipeline ({CORPUS_SIZE} records, consistent "
        "style)",
        ["lane", "cold", "warm"],
        [
            row("staged (pre-PR)", staged),
            row("fused + automaton", fused),
            row("fused (profiled)", profiled),
            (
                "fused parallel x2",
                f"{lanes['fused_parallel']['total_seconds']:.2f}s",
                "-",
            ),
        ],
    )

    stage_seconds = profiled["stages"]["seconds"]
    stage_sum = sum(stage_seconds.values())
    payload = {
        "bench": "bench_pipeline",
        "corpus_size": CORPUS_SIZE,
        **lanes,
        "stage_seconds_sum": stage_sum,
        "warm_speedup_fused_vs_staged": guarded_ratio(
            staged["warm_seconds"], fused["warm_seconds"], floor=1e-4
        ),
        "cold_speedup_fused_vs_staged": guarded_ratio(
            staged["cold_seconds"], fused["cold_seconds"], floor=1e-4
        ),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=1, sort_keys=True))

    # Acceptance bars (CI re-checks them from the JSON artifact).
    assert fused["warm_seconds"] <= 0.7 * staged["warm_seconds"], (
        fused["warm_seconds"],
        staged["warm_seconds"],
    )
    # Exclusive stage times must account for the profiled lane's
    # extraction wall clock — the profiler measures, it does not
    # invent or lose time.
    extract = profiled["extract_seconds"]
    assert abs(stage_sum - extract) <= 0.2 * extract, (
        stage_sum,
        extract,
    )
    # The unprofiled fused lane must not pay for the instrumentation.
    assert not fused["stages"].get("seconds")
