"""FIG1 — the paper's Figure 1 linkage diagram.

Parses the exact example sentence, checks the headline verb–object
link between "is" and "144/90", and verifies the shortest-distance
association assigns each vital its own number.
"""

from conftest import print_table

from repro.linkgrammar import (
    ASSOCIATION_WEIGHTS,
    LinkGrammarParser,
    nearest_word,
)

FIGURE1 = (
    "blood pressure is 144/90 , pulse of 84 , temperature of 98.3 , "
    "and weight of 154 pounds ."
).split()

EXPECTED_ASSOCIATION = {
    "pressure": "144/90",
    "pulse": "84",
    "temperature": "98.3",
    "weight": "154",
}


def test_figure1_linkage(benchmark):
    parser = LinkGrammarParser(max_linkages=4)
    linkage = benchmark(lambda: parser.parse_one(FIGURE1))

    links = {
        (linkage.words[l.left], linkage.words[l.right]): l.label
        for l in linkage.links
    }
    # "The link between 'is' and '144/90' represents a verb-object
    # relation (denoted by notation 'O')."
    assert links.get(("is", "144/90")) == "O"
    assert links.get(("blood", "pressure")) == "AN"
    assert linkage.is_planar() and linkage.is_connected()

    numbers = [
        i
        for i, w in enumerate(linkage.words)
        if w in EXPECTED_ASSOCIATION.values()
    ]
    rows = []
    for feature, expected in EXPECTED_ASSOCIATION.items():
        position = linkage.words.index(feature)
        best, distance = nearest_word(
            linkage, position, numbers, weights=ASSOCIATION_WEIGHTS
        )
        got = linkage.words[best]
        rows.append((feature, expected, got, f"{distance:.2f}"))
        assert got == expected

    print_table(
        "Figure 1: feature-number association via linkage distance",
        ["feature", "paper", "measured", "distance"],
        rows,
    )
    print(linkage.diagram())
    benchmark.extra_info["links"] = len(linkage.links)
