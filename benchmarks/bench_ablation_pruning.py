"""ABL-PRUNE — reduced-error pruning vs plain ID3 (extension).

The paper picks plain ID3 and never prunes.  This bench shows that
choice is *right at this scale*: with 45 labelled cases, carving a
validation slice out of each training fold starves both the tree and
the pruning signal — pruned trees are half the size but markedly less
accurate.  Pruning pays off only with more data than a 50-chart
study has.
"""

import random

from conftest import print_table

from repro.extraction import CategoricalClassifier
from repro.extraction.schema import attribute
from repro.ml import Dataset, ID3Classifier
from repro.ml.pruning import prune_tree


def test_pruning_tradeoff(benchmark, cohort):
    records, golds = cohort
    classifier = CategoricalClassifier(attribute("smoking"))
    pairs = [
        (classifier.features(r.section_text("Social History")),
         g.categorical["smoking"])
        for r, g in zip(records, golds)
        if g.categorical["smoking"] is not None
    ]
    dataset = Dataset.from_pairs(pairs)

    def run():
        rng = random.Random(0)
        plain_correct = pruned_correct = total = 0
        plain_sizes: list[int] = []
        pruned_sizes: list[int] = []
        for _ in range(10):
            shuffled = dataset.shuffled(rng)
            for train, test in shuffled.folds(5):
                # Carve a validation slice out of the training fold.
                cut = max(len(train) // 4, 2)
                validation = Dataset(train.instances[:cut])
                core = Dataset(train.instances[cut:])
                plain = ID3Classifier().fit(train)
                pruned = prune_tree(
                    ID3Classifier().fit(core), validation
                )
                plain_sizes.append(len(plain.features_used()))
                pruned_sizes.append(len(pruned.features_used()))
                for instance in test:
                    total += 1
                    plain_correct += (
                        plain.predict(instance) == instance.label
                    )
                    pruned_correct += (
                        pruned.predict(instance) == instance.label
                    )
        return (
            plain_correct / total,
            pruned_correct / total,
            sum(plain_sizes) / len(plain_sizes),
            sum(pruned_sizes) / len(pruned_sizes),
        )

    plain_acc, pruned_acc, plain_size, pruned_size = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Reduced-error pruning on smoking (5-fold CV x 10)",
        ["variant", "accuracy", "avg tree features"],
        [
            ("plain ID3 (paper)", f"{plain_acc:.1%}",
             f"{plain_size:.1f}"),
            ("reduced-error pruned", f"{pruned_acc:.1%}",
             f"{pruned_size:.1f}"),
        ],
    )

    # Pruning must shrink trees — and at 45 cases it costs accuracy,
    # which is exactly why the paper's plain-ID3 choice is sound here.
    assert pruned_size <= plain_size
    assert plain_acc >= pruned_acc
    assert pruned_acc >= 0.5  # still far above the 62% majority rate
