"""SERVE — the resident daemon vs the one-shot batch path.

The batch CLI pays full start-up per invocation; the service loads
the compiled stack once and serves extraction over a socket.  This
bench measures what that residency buys on live traffic:

* **sustained throughput** — records/s through ``extract_many``'s
  pipelined window, driving the micro-batcher hard enough that it
  actually coalesces;
* **request latency** — p50/p99 of single blocking ``extract`` calls
  (each is its own micro-batch: the worst case for the batcher, the
  common case for an interactive caller);
* **batch path reference** — the same cohort through
  ``CorpusRunner`` on the same warm stack, so the protocol tax
  (JSON framing + socket hop + queueing) is visible next to it.

Emits ``BENCH_service.json`` so the serving trajectory is
machine-readable across PRs.  Correctness gates (byte-identity with
the batch store) live in the integration suite, not here.
"""

import json
import statistics
import time
from pathlib import Path

from conftest import print_table

from repro.client import ServiceClient
from repro.extraction import RecordExtractor
from repro.runtime import CorpusRunner
from repro.runtime.service import ExtractionService, ServiceConfig
from repro.synth import CohortSpec, RecordGenerator

CORPUS_SIZE = 60
LATENCY_SAMPLES = 30
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _cohort(size: int):
    records, _ = RecordGenerator(seed=17).generate_cohort(
        CohortSpec(
            size=size,
            smoking_counts={
                "never": size - 3, "current": 1, "former": 1, None: 1,
            },
        )
    )
    return records


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, round(fraction * (len(ordered) - 1))
    )
    return ordered[index]


def test_service_throughput_and_latency(benchmark, tmp_path):
    records = _cohort(CORPUS_SIZE)
    socket_path = str(tmp_path / "bench.sock")

    def run():
        service = ExtractionService(
            RecordExtractor(),
            config=ServiceConfig(
                socket_path=socket_path,
                linger_s=0.02,
                max_batch=32,
            ),
        )
        service.start()
        try:
            with ServiceClient(socket_path=socket_path) as client:
                # Sustained: the pipelined window keeps the queue fed
                # so the batcher coalesces.
                started = time.perf_counter()
                results, quarantined = client.extract_many(records)
                sustained = time.perf_counter() - started
                assert len(results) == CORPUS_SIZE
                assert quarantined == []

                # Latency: one blocking request at a time.
                samples = []
                for record in records[:LATENCY_SAMPLES]:
                    started = time.perf_counter()
                    client.extract(record)
                    samples.append(time.perf_counter() - started)
                stats = client.stats()
        finally:
            service.stop(timeout=60)

        # The same warm stack through the batch engine, as the
        # no-protocol reference point.
        runner = CorpusRunner(service.runner.extractor, workers=1)
        started = time.perf_counter()
        runner.run(records)
        batch_seconds = time.perf_counter() - started

        return {
            "corpus_size": CORPUS_SIZE,
            "sustained_seconds": sustained,
            "sustained_records_per_s": CORPUS_SIZE / sustained,
            "latency_p50_s": _percentile(samples, 0.50),
            "latency_p99_s": _percentile(samples, 0.99),
            "latency_mean_s": statistics.fmean(samples),
            "batches": stats["batches"],
            "mean_batch_size": (
                stats["records_dispatched"] / stats["batches"]
            ),
            "batch_engine_seconds": batch_seconds,
            "batch_engine_records_per_s": (
                CORPUS_SIZE / batch_seconds
            ),
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Service vs batch engine",
        ["lane", "records/s", "detail"],
        [
            (
                "service sustained",
                f"{report['sustained_records_per_s']:.1f}",
                f"{report['batches']} batches, "
                f"mean size {report['mean_batch_size']:.1f}",
            ),
            (
                "service per-request",
                f"{1.0 / report['latency_mean_s']:.1f}",
                f"p50 {report['latency_p50_s'] * 1e3:.1f}ms  "
                f"p99 {report['latency_p99_s'] * 1e3:.1f}ms",
            ),
            (
                "batch engine",
                f"{report['batch_engine_records_per_s']:.1f}",
                "no protocol, same warm stack",
            ),
        ],
    )
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    # The micro-batcher must actually coalesce under pipelined load,
    # and the protocol tax must stay bounded: sustained service
    # throughput within 5x of the raw batch engine (JSON framing,
    # socket hop, and per-batch runner bookkeeping are all real).
    assert report["mean_batch_size"] > 1.0
    assert report["sustained_records_per_s"] >= (
        report["batch_engine_records_per_s"] / 5.0
    )
