"""SERVE — the resident daemon vs the one-shot batch path.

The batch CLI pays full start-up per invocation; the service loads
the compiled stack once and serves extraction over a socket.  This
bench measures what that residency buys on live traffic:

* **sustained throughput** — records/s through ``extract_many``'s
  pipelined window, driving the micro-batcher hard enough that it
  actually coalesces;
* **request latency** — p50/p99 of single blocking ``extract`` calls
  (each is its own micro-batch: the worst case for the batcher, the
  common case for an interactive caller);
* **batch path reference** — the same cohort through
  ``CorpusRunner`` on the same warm stack, so the protocol tax
  (JSON framing + socket hop + queueing) is visible next to it;
* **open-loop load sweep** — a Poisson arrival process at a sweep of
  offered rates, sent on schedule *regardless of completions* (a
  closed-loop client slows down with the server and hides queueing
  delay — the coordinated-omission trap), yielding the
  latency-vs-throughput curve and the saturation knee.

Emits ``BENCH_service.json`` so the serving trajectory is
machine-readable across PRs.  Correctness gates (byte-identity with
the batch store) live in the integration suite, not here.
"""

import json
import os
import random
import socket as socket_module
import statistics
import threading
import time
from pathlib import Path

from conftest import print_table

from repro.client import ServiceClient
from repro.extraction import RecordExtractor
from repro.runtime import CorpusRunner
from repro.runtime.service import (
    ExtractionService,
    ServiceConfig,
    record_to_dict,
)
from repro.synth import CohortSpec, RecordGenerator

CORPUS_SIZE = 60
LATENCY_SAMPLES = 30
#: Offered-rate sweep, as fractions of the batch-engine reference
#: throughput (the per-core capacity ceiling any service fronts).
SWEEP_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0, 1.3)
#: The fixed sub-saturation operating point the SLO gate reads.
SLO_FRACTION = 0.5
SWEEP_SECONDS = 2.0
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _cohort(size: int):
    records, _ = RecordGenerator(seed=17).generate_cohort(
        CohortSpec(
            size=size,
            smoking_counts={
                "never": size - 3, "current": 1, "former": 1, None: 1,
            },
        )
    )
    return records


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, round(fraction * (len(ordered) - 1))
    )
    return ordered[index]


def test_service_throughput_and_latency(benchmark, tmp_path):
    records = _cohort(CORPUS_SIZE)
    socket_path = str(tmp_path / "bench.sock")

    def run():
        service = ExtractionService(
            RecordExtractor(),
            config=ServiceConfig(
                socket_path=socket_path,
                linger_s=0.02,
                max_batch=32,
            ),
        )
        service.start()
        try:
            with ServiceClient(socket_path=socket_path) as client:
                # Warm pass: fills parse/linkage caches so the timed
                # pass measures steady-state residency, the same
                # warmth the batch reference lane gets below.
                client.extract_many(records)
                warm_stats = client.stats()

                # Sustained: the pipelined window keeps the queue fed
                # so the batcher coalesces.
                started = time.perf_counter()
                results, quarantined = client.extract_many(records)
                sustained = time.perf_counter() - started
                assert len(results) == CORPUS_SIZE
                assert quarantined == []
                sustained_stats = client.stats()

                # Latency: one blocking request at a time.
                samples = []
                for record in records[:LATENCY_SAMPLES]:
                    started = time.perf_counter()
                    client.extract(record)
                    samples.append(time.perf_counter() - started)
        finally:
            service.stop(timeout=60)
        # Sustained-phase stats only: the warm pass and the singleton
        # latency probes would otherwise dilute the batch sizes.
        batches = (
            sustained_stats["batches"] - warm_stats["batches"]
        )
        dispatched = (
            sustained_stats["records_dispatched"]
            - warm_stats["records_dispatched"]
        )

        # The same warm stack through the batch engine, as the
        # no-protocol reference point.
        runner = CorpusRunner(service.runner.extractor, workers=1)
        started = time.perf_counter()
        runner.run(records)
        batch_seconds = time.perf_counter() - started

        return {
            "corpus_size": CORPUS_SIZE,
            "sustained_seconds": sustained,
            "sustained_records_per_s": CORPUS_SIZE / sustained,
            "latency_p50_s": _percentile(samples, 0.50),
            "latency_p99_s": _percentile(samples, 0.99),
            "latency_mean_s": statistics.fmean(samples),
            "batches": batches,
            "mean_batch_size": dispatched / batches,
            "batch_engine_seconds": batch_seconds,
            "batch_engine_records_per_s": (
                CORPUS_SIZE / batch_seconds
            ),
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Service vs batch engine",
        ["lane", "records/s", "detail"],
        [
            (
                "service sustained",
                f"{report['sustained_records_per_s']:.1f}",
                f"{report['batches']} batches, "
                f"mean size {report['mean_batch_size']:.1f}",
            ),
            (
                "service per-request",
                f"{1.0 / report['latency_mean_s']:.1f}",
                f"p50 {report['latency_p50_s'] * 1e3:.1f}ms  "
                f"p99 {report['latency_p99_s'] * 1e3:.1f}ms",
            ),
            (
                "batch engine",
                f"{report['batch_engine_records_per_s']:.1f}",
                "no protocol, same warm stack",
            ),
        ],
    )
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    # The micro-batcher must actually coalesce under pipelined load,
    # and the protocol tax must stay bounded: sustained service
    # throughput within 5x of the raw batch engine (JSON framing,
    # socket hop, and per-batch runner bookkeeping are all real).
    assert report["mean_batch_size"] > 1.0
    assert report["sustained_records_per_s"] >= (
        report["batch_engine_records_per_s"] / 5.0
    )


# ------------------------------------------------- open-loop harness

def _open_loop_lane(
    socket_path, records, rate, duration_s, seed
):
    """Drive one open-loop lane: Poisson arrivals at *rate* req/s.

    A sender thread fires requests on the arrival schedule no matter
    how the service is doing; the main thread reads responses and
    measures each request's latency from its *scheduled* send time.
    Shed (``overloaded``) responses are counted, not resent — an
    open-loop generator models independent clients, not a retry loop.
    """
    rng = random.Random(seed)
    arrivals = []
    t = 0.0
    while t < duration_s:
        arrivals.append(t)
        t += rng.expovariate(rate)
    sock = socket_module.socket(socket_module.AF_UNIX)
    sock.settimeout(120)
    sock.connect(socket_path)
    reader = sock.makefile("r", encoding="utf-8")
    writer = sock.makefile("w", encoding="utf-8")
    send_times = {}

    def sender():
        base = time.perf_counter()
        for i, arrival in enumerate(arrivals):
            delay = base + arrival - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            request_id = f"o{i}"
            payload = {
                "op": "extract",
                "id": request_id,
                "record": record_to_dict(
                    records[i % len(records)]
                ),
            }
            # Latency is measured from the scheduled arrival, so
            # queueing delay inside the client counts too.
            send_times[request_id] = base + arrival
            writer.write(json.dumps(payload) + "\n")
            writer.flush()

    thread = threading.Thread(target=sender, daemon=True)
    started = time.perf_counter()
    thread.start()
    latencies = []
    shed = 0
    for _ in range(len(arrivals)):
        response = json.loads(reader.readline())
        now = time.perf_counter()
        if response.get("ok"):
            latencies.append(now - send_times[response["id"]])
        else:
            shed += 1
    elapsed = time.perf_counter() - started
    thread.join(timeout=10)
    sock.close()
    completed = len(latencies)
    return {
        "offered_rate": rate,
        "sent": len(arrivals),
        "completed": completed,
        "shed": shed,
        "achieved_records_per_s": (
            completed / elapsed if elapsed > 0 else 0.0
        ),
        "latency_p50_s": (
            _percentile(latencies, 0.50) if latencies else None
        ),
        "latency_p99_s": (
            _percentile(latencies, 0.99) if latencies else None
        ),
    }


def _find_knee(sweep):
    """First offered rate where the service stops keeping up.

    Saturation shows as either goodput falling visibly below the
    offered rate (sheds / queue growth) or tail latency blowing past
    the uncongested baseline.
    """
    baseline = next(
        (
            lane["latency_p99_s"]
            for lane in sweep
            if lane["latency_p99_s"] is not None
        ),
        None,
    )
    for lane in sweep:
        if lane["completed"] == 0:
            return {
                "offered_rate": lane["offered_rate"],
                "reason": "no completions",
            }
        if lane["achieved_records_per_s"] < (
            0.85 * lane["offered_rate"]
        ):
            return {
                "offered_rate": lane["offered_rate"],
                "reason": "goodput below 0.85x offered",
            }
        if (
            baseline is not None
            and lane["latency_p99_s"] is not None
            and lane["latency_p99_s"] > 5.0 * baseline
        ):
            return {
                "offered_rate": lane["offered_rate"],
                "reason": "p99 over 5x uncongested baseline",
            }
    return None


def test_open_loop_sweep(benchmark, tmp_path):
    """Latency-vs-throughput curve from an open-loop rate sweep."""
    records = _cohort(CORPUS_SIZE)
    socket_path = str(tmp_path / "sweep.sock")
    shards = int(os.environ.get("REPRO_BENCH_SHARDS", "1"))

    def run():
        # Reference capacity: the batch engine on a warm stack.
        extractor = RecordExtractor()
        runner = CorpusRunner(extractor, workers=1)
        runner.run(records)  # warm caches
        started = time.perf_counter()
        runner.run(records)
        batch_seconds = time.perf_counter() - started
        batch_rps = CORPUS_SIZE / batch_seconds

        service = ExtractionService(
            extractor,
            config=ServiceConfig(
                socket_path=socket_path,
                linger_s=0.005,
                max_batch=32,
                max_queue=256,
                shards=shards,
            ),
        )
        service.start()
        try:
            # Warm the service path (and any shard children) before
            # measuring.
            with ServiceClient(socket_path=socket_path) as client:
                client.extract_many(records[:10])
            sweep = []
            for fraction in SWEEP_FRACTIONS:
                sweep.append(
                    _open_loop_lane(
                        socket_path,
                        records,
                        rate=max(1.0, fraction * batch_rps),
                        duration_s=SWEEP_SECONDS,
                        seed=int(fraction * 1000),
                    )
                )
            slo_lane = _open_loop_lane(
                socket_path,
                records,
                rate=max(1.0, SLO_FRACTION * batch_rps),
                duration_s=SWEEP_SECONDS,
                seed=4242,
            )
        finally:
            service.stop(timeout=60)
        return {
            "shards": shards,
            "batch_engine_records_per_s": batch_rps,
            "sweep": sweep,
            "knee": _find_knee(sweep),
            "slo": {
                "offered_fraction_of_batch": SLO_FRACTION,
                **slo_lane,
            },
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            f"{lane['offered_rate']:.0f} req/s offered",
            f"{lane['achieved_records_per_s']:.1f}",
            (
                f"p99 {lane['latency_p99_s'] * 1e3:.1f}ms, "
                f"{lane['shed']} shed"
                if lane["latency_p99_s"] is not None
                else f"{lane['shed']} shed"
            ),
        )
        for lane in report["sweep"]
    ]
    knee = report["knee"]
    rows.append(
        (
            "knee",
            f"{knee['offered_rate']:.0f}" if knee else "-",
            knee["reason"] if knee else "not reached in sweep",
        )
    )
    print_table(
        f"Open-loop sweep ({report['shards']} shard(s))",
        ["lane", "records/s", "detail"],
        rows,
    )

    # Merge into the artifact the closed-loop test wrote (or start
    # fresh when run standalone).
    merged = (
        json.loads(ARTIFACT.read_text())
        if ARTIFACT.exists()
        else {}
    )
    merged.update(report)
    ARTIFACT.write_text(json.dumps(merged, indent=2) + "\n")

    # Sub-saturation sanity: the SLO operating point must complete
    # the bulk of what was offered.  The p99<=100ms and >=0.9x batch
    # throughput gates are applied by CI on multi-core runners (see
    # .github/workflows/ci.yml service-slo); a 1-core box records
    # the curve without gating absolute numbers.
    slo = report["slo"]
    assert slo["completed"] >= 0.5 * slo["sent"]
    cpu_count = os.cpu_count() or 1
    if cpu_count >= 4 and shards >= 4:
        assert slo["latency_p99_s"] is not None
        assert slo["latency_p99_s"] <= 0.100
        peak = max(
            lane["achieved_records_per_s"]
            for lane in report["sweep"]
        )
        assert peak >= 0.9 * report["batch_engine_records_per_s"]
