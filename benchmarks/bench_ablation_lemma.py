"""ABL-LEMMA — §3.3 option 4.

"The use of lemma will not only reduce the number of candidate
features, but also influence the choice of nodes during the
construction of a decision tree.  We recommend enabling this option."
"""

from conftest import print_table

from repro.eval import categorical_experiment
from repro.extraction import CategoricalClassifier, FeatureOptions
from repro.extraction.schema import attribute


def _candidate_features(records, golds, options):
    classifier = CategoricalClassifier(
        attribute("smoking"), options=options
    )
    texts = [
        r.section_text("Social History")
        for r, g in zip(records, golds)
        if g.categorical["smoking"] is not None
    ]
    labels = [
        g.categorical["smoking"]
        for g in golds
        if g.categorical["smoking"] is not None
    ]
    return len(classifier.dataset(texts, labels).features())


def test_lemma_option_ablation(benchmark, cohort):
    records, golds = cohort

    def run():
        rows = []
        for label, use_lemma in [("lemma on", True), ("lemma off", False)]:
            options = FeatureOptions(use_lemma=use_lemma)
            result = categorical_experiment(
                "smoking", records, golds, options=options, seed=0
            )
            candidates = _candidate_features(records, golds, options)
            rows.append(
                (label, f"{result.accuracy:.1%}",
                 f"{result.min_features}-{result.max_features}",
                 candidates)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Lemma option ablation (smoking, 5-fold CV x 10)",
        ["setting", "accuracy", "tree features", "candidate features"],
        rows,
    )

    # Lemma reduces the candidate feature count, as the paper states.
    assert rows[0][3] <= rows[1][3]
