"""SMOKE — §5: ID3 smoking classification.

Paper: 45 cases (5 former / 12 current / 28 never), five-fold cross
validation repeated ten times with reshuffling, average precision
(recall) 92.2%, decision trees using 4–7 features.
"""

from conftest import print_table

from repro.eval import smoking_experiment


def test_smoking_classification(benchmark, cohort):
    records, golds = cohort
    labels = [g.categorical["smoking"] for g in golds]
    assert labels.count("never") == 28
    assert labels.count("current") == 12
    assert labels.count("former") == 5

    result = benchmark.pedantic(
        lambda: smoking_experiment(records, golds, seed=0),
        rounds=1,
        iterations=1,
    )

    print_table(
        "Smoking behaviour classification (5-fold CV x 10)",
        ["metric", "paper", "measured"],
        [
            ("avg precision (recall)", "92.2%", f"{result.accuracy:.1%}"),
            ("features used per tree", "4-7",
             f"{result.min_features}-{result.max_features}"),
            ("labelled cases", "45", str(result.confusion.total() // 10)),
        ],
    )
    for label in ("never", "former", "current"):
        print(
            f"  {label:8s} P={result.confusion.precision(label):.1%} "
            f"R={result.confusion.recall(label):.1%}"
        )

    # Shape: high-80s to mid-90s accuracy with a handful of features.
    assert result.accuracy >= 0.85
    assert result.min_features >= 3
    assert result.max_features <= 10
    benchmark.extra_info["accuracy"] = round(result.accuracy, 4)
    benchmark.extra_info["features"] = (
        result.min_features, result.max_features,
    )
