"""Shared fixtures for the benchmark harness.

Every bench works from the same deterministic paper cohort: 50
records, consistent dictation style, smoking composition 28 never /
12 current / 5 former / 5 missing (§5).
"""

import pytest

from repro.eval import paper_cohort
from repro.synth import CohortSpec, DictationStyle, RecordGenerator

PAPER_SEED = 42


@pytest.fixture(scope="session")
def cohort():
    """The paper's 50-record evaluation data set."""
    return paper_cohort(seed=PAPER_SEED)


@pytest.fixture(scope="session")
def small_cohort():
    """A 20-record cohort for the heavier ablation sweeps."""
    generator = RecordGenerator(seed=PAPER_SEED)
    spec = CohortSpec(
        size=20,
        smoking_counts={"never": 11, "current": 5, "former": 3, None: 1},
    )
    return generator.generate_cohort(spec)


def varied_cohort(level: float, size: int = 20, seed: int = 7):
    """A cohort dictated with the given style-variability level."""
    generator = RecordGenerator(
        style=DictationStyle.varied(level), seed=seed
    )
    spec = CohortSpec(
        size=size,
        smoking_counts={
            "never": size - 9, "current": 5, "former": 3, None: 1,
        },
    )
    return generator.generate_cohort(spec)


def print_table(title: str, headers: list[str], rows: list[tuple]):
    """Uniform fixed-width table output for all benches."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
