"""ABL-ASSOC — §3.1's design claim, made measurable.

"The major advantage of a pattern approach is its simplicity.
However, this approach has generalization problems because the
expression of natural language is so flexible."  We compare numeric
association accuracy for patterns-only, linkage-only, and the paper's
hybrid, on consistent and on highly varied dictation.
"""

from conftest import print_table, varied_cohort

from repro.eval import numeric_experiment
from repro.extraction import NumericExtractor


def _accuracy(records, golds, **kwargs):
    extractor = NumericExtractor(**kwargs)
    result = numeric_experiment(records, golds, extractor=extractor)
    p, r = result.overall()
    return p, r


def test_association_method_ablation(benchmark, small_cohort):
    consistent = small_cohort
    varied = varied_cohort(1.0)

    def run():
        rows = []
        for label, (records, golds) in [
            ("consistent", consistent), ("varied", varied),
        ]:
            for method, kwargs in [
                # Strict modes isolate each association mechanism; the
                # hybrid adds the nearest-number heuristic as a final
                # net, mirroring the paper's layered design.
                ("patterns only", dict(use_linkage=False,
                                       use_patterns=True,
                                       use_proximity=False)),
                ("linkage only", dict(use_linkage=True,
                                      use_patterns=False,
                                      use_proximity=False)),
                ("hybrid (paper)", dict(use_linkage=True,
                                        use_patterns=True,
                                        use_proximity=True)),
            ]:
                p, r = _accuracy(records, golds, **kwargs)
                rows.append((label, method, f"{p:.1%}", f"{r:.1%}"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Association ablation (numeric extraction, 20 records)",
        ["style", "method", "precision", "recall"],
        rows,
    )

    def recall_of(style, method):
        for s, m, _, r in rows:
            if s == style and m == method:
                return float(r.rstrip("%")) / 100
        raise KeyError((style, method))

    # The hybrid never loses to either component.
    for style in ("consistent", "varied"):
        hybrid = recall_of(style, "hybrid (paper)")
        assert hybrid >= recall_of(style, "patterns only") - 1e-9
        assert hybrid >= recall_of(style, "linkage only") - 1e-9
