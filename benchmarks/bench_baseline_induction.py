"""BASE-WHISK — §2's road not taken, measured.

The paper rejects supervised pattern learners (AutoSlog, CRYSTAL,
WHISK) because "supervised pattern learning is costly" and uses the
unsupervised link-grammar association instead.  This bench quantifies
the cost: a WHISK-style inducer needs labelled records before it
approaches the analytic method, which needs none.
"""

from conftest import print_table, varied_cohort

from repro.baselines import PatternNumericBaseline
from repro.eval import numeric_experiment

TRAIN_SIZES = (2, 5, 10, 20)


def test_supervision_cost_curve(benchmark):
    test_records, test_golds = varied_cohort(1.0, seed=5)
    train_records, train_golds = varied_cohort(
        1.0, size=max(TRAIN_SIZES), seed=99
    )

    def run():
        rows = []
        # The paper's method: zero training data.
        link_result = numeric_experiment(test_records, test_golds)
        lp, lr = link_result.overall()
        rows.append(("link grammar (paper)", "0", f"{lp:.1%}",
                     f"{lr:.1%}", lr))
        for n in TRAIN_SIZES:
            baseline = PatternNumericBaseline()
            baseline.train(train_records[:n], train_golds[:n])
            result = numeric_experiment(
                test_records, test_golds, extractor=baseline
            )
            p, r = result.overall()
            rows.append(
                (f"induced patterns", str(n), f"{p:.1%}", f"{r:.1%}", r)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Supervision cost (numeric extraction, varied style, 20 test "
        "records)",
        ["method", "train records", "precision", "recall"],
        [row[:4] for row in rows],
    )

    link_recall = rows[0][4]
    smallest_train_recall = rows[1][4]
    largest_train_recall = rows[-1][4]
    # The inducer improves with data and, data-starved, trails the
    # untrained analytic method.
    assert largest_train_recall >= smallest_train_recall
    assert link_recall >= smallest_train_recall
