"""TAB1 — Table 1: medical-term extraction precision and recall.

Paper: Predefined PMH 96.7/96.7, Other PMH 76.1/86.4, Predefined PSH
77.8/35.0, Other PSH 62.0/75.0.  We reproduce the *shape*: predefined
medical history far above the rest, predefined surgical recall
collapsing on unrecognized synonyms, other-surgical precision lowest.
"""

from conftest import print_table

from repro.eval import TABLE1_PAPER, table1_experiment

_ROW_NAMES = {
    "predefined_past_medical_history": "Predefined Past Medical History",
    "other_past_medical_history": "Other Past Medical History",
    "predefined_past_surgical_history":
        "Predefined Past Surgical History",
    "other_past_surgical_history": "Other Past Surgical History",
}


def test_table1_medical_term_extraction(benchmark, cohort):
    records, golds = cohort

    table = benchmark.pedantic(
        lambda: table1_experiment(records, golds),
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, label in _ROW_NAMES.items():
        paper_p, paper_r = TABLE1_PAPER[name]
        p, r = table[name]
        rows.append(
            (label, f"{paper_p:.1%} / {paper_r:.1%}",
             f"{p:.1%} / {r:.1%}")
        )
    print_table(
        "Table 1: medical term extraction",
        ["attribute", "paper P / R", "measured P / R"],
        rows,
    )

    # Shape assertions, not decimals:
    # 1. predefined PMH dominates both PMH metrics;
    pre_pmh = table["predefined_past_medical_history"]
    other_pmh = table["other_past_medical_history"]
    assert pre_pmh[0] >= other_pmh[0]
    assert pre_pmh[1] >= 0.85
    # 2. predefined PSH recall collapses (paper: 35%);
    pre_psh = table["predefined_past_surgical_history"]
    assert pre_psh[1] <= 0.60
    # 3. other PSH precision is the lowest precision row.
    other_psh = table["other_past_surgical_history"]
    assert other_psh[0] == min(p for p, _ in table.values())
    benchmark.extra_info["table"] = {
        k: (round(p, 3), round(r, 3)) for k, (p, r) in table.items()
    }
