"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 517 editable installs fail.  This shim lets
``pip install -e . --no-build-isolation`` (and plain
``pip install -e .`` on pip configured for legacy installs) use the
classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
